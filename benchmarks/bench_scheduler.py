"""BENCH — multi-job scheduler throughput vs running the jobs sequentially.

The fair-share scheduler time-slices many persisted jobs over one backend
pool; this benchmark measures what that multiplexing costs.  N identical
full-scan jobs (no match in the space, so every candidate is tested) run
twice: back-to-back through the bare backend, and as concurrent
:mod:`repro.service` jobs under deficit-round-robin with checkpointing.
The ratio of aggregate keys/sec is the scheduling + checkpoint overhead —
it should stay close to 1.0.

Standalone::

    PYTHONPATH=src python benchmarks/bench_scheduler.py [--quick]

or imported by :mod:`benchmarks.run_all`, which folds the results into
``BENCH_cracking.json``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import tempfile
import time

from repro.apps.cracking import CrackTarget
from repro.core.backend import resolve_backend
from repro.core.progress import ProgressLog, pending_chunks
from repro.keyspace import ALPHA_LOWER
from repro.obs import Recorder
from repro.obs.schema import MetricNames
from repro.service import JobSpec, JobStore, Scheduler

_BATCH = 1 << 14
_CHUNK = 1 << 14
#: Slice budget per priority point: 8 chunks per round.  Fairness is
#: granular at the quantum; durable-write overhead shrinks with it — this
#: is the tradeoff a deployment tunes, and the bench uses a middle value.
_QUANTUM = _CHUNK * 8
#: Length window: a full lowercase scan of 1..4 chars per job (475k keys).
_MAX_LENGTH = 4


def _spec(index: int) -> JobSpec:
    return JobSpec(
        digest=hashlib.md5(f"*no match {index}*".encode()).digest(),
        charset=ALPHA_LOWER.symbols,
        min_length=1,
        max_length=_MAX_LENGTH,
        batch_size=_BATCH,
        chunk_size=_CHUNK,
        stop_on_first=False,
        backend="serial",
    )


def _target(index: int) -> CrackTarget:
    return _spec(index).to_target()


def _phase_totals(exports) -> dict:
    wanted = {
        MetricNames.PHASE_SCATTER: "scatter",
        MetricNames.PHASE_SEARCH: "search",
        MetricNames.PHASE_GATHER: "gather",
    }
    totals = {label: 0.0 for label in wanted.values()}
    for export in exports:
        for row in (export or {}).get("spans", []):
            label = wanted.get(row["name"])
            if label is not None:
                totals[label] += row["total"]
    return totals


def _overhead_ratios(phases: dict, elapsed: float) -> dict:
    """Dispatch/gather share of wall time (see bench_backend_scaling)."""
    if not elapsed or elapsed <= 0:
        return {"dispatch_ratio": 0.0, "gather_ratio": 0.0}
    return {
        "dispatch_ratio": phases.get("scatter", 0.0) / elapsed,
        "gather_ratio": phases.get("gather", 0.0) / elapsed,
    }


def bench_sequential(jobs: int) -> dict:
    """Baseline: the same scans, one after another on the bare backend."""
    backend = resolve_backend("serial")
    recorder = Recorder()
    total = 0
    started = time.perf_counter()
    for index in range(jobs):
        target = _target(index)
        log = ProgressLog(total=target.space_size)
        outcome = backend.run(
            target,
            pending_chunks(log, _CHUNK),
            batch_size=_BATCH,
            recorder=recorder,
        )
        total += outcome.tested
    elapsed = time.perf_counter() - started
    metrics = recorder.export()
    phases = _phase_totals([metrics])
    return {
        "backend": "serial",
        "mode": "sequential",
        "workers": 1,
        "batch_size": _BATCH,
        "tested": total,
        "elapsed": elapsed,
        "keys_per_second": total / elapsed if elapsed else 0.0,
        "phases": phases,
        "overheads": _overhead_ratios(phases, elapsed),
        "metrics": metrics,
    }


def bench_scheduler(jobs: int) -> dict:
    """The same scans as concurrent fair-shared checkpointed jobs."""
    with tempfile.TemporaryDirectory(prefix="bench-scheduler-") as root:
        store = JobStore(root)
        recorder = Recorder()
        with Scheduler(
            store, backend="serial", quantum=_QUANTUM, recorder=recorder
        ) as sched:
            ids = [sched.submit(_spec(index)).id for index in range(jobs)]
            started = time.perf_counter()
            sched.run_until_idle()
            elapsed = time.perf_counter() - started
            total = sum(sched.served(job_id) for job_id in ids)
        complete = all(store.load_progress(job_id).is_complete for job_id in ids)
        job_exports = [store.load_metrics(job_id) for job_id in ids]
    phases = _phase_totals(job_exports)
    return {
        "backend": "serial",
        "mode": "scheduler",
        "workers": 1,
        "batch_size": _BATCH,
        "tested": total,
        "elapsed": elapsed,
        "keys_per_second": total / elapsed if elapsed else 0.0,
        "phases": phases,
        "overheads": _overhead_ratios(phases, elapsed),
        "metrics": recorder.export(),  # the cross-job decision timeline
        "coverage_complete": complete,
    }


def run(quick: bool = False, workers: int | None = None) -> dict:
    """Returns the ``BENCH_cracking.json`` payload fragment."""
    jobs = 3 if quick else 6
    # Best-of-repeats on both sides: the ratio compares the two modes'
    # capability, not which run a noisy-neighbour stall happened to hit.
    repeats = 2 if quick else 3
    sequential = max(
        (bench_sequential(jobs) for _ in range(repeats)),
        key=lambda row: row["keys_per_second"],
    )
    scheduled = max(
        (bench_scheduler(jobs) for _ in range(repeats)),
        key=lambda row: row["keys_per_second"],
    )
    ratio = (
        scheduled["keys_per_second"] / sequential["keys_per_second"]
        if sequential["keys_per_second"]
        else 0.0
    )
    return {
        "name": "scheduler_multi_job",
        "jobs": jobs,
        "space_per_job": _target(0).space_size,
        "results": [sequential, scheduled],
        "scheduler_vs_sequential": ratio,
        "all_results_identical": (
            scheduled["coverage_complete"]
            and scheduled["tested"] == sequential["tested"]
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer concurrent jobs")
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
