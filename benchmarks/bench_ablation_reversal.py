"""EXP A1 — ablation: the digest-reversal trick's ~1.25x speedup.

Section V credits BarsWF's meet-in-the-middle trick with "a speedup of
about 1.25 in almost all architectures".  Measured three ways:

1. static instruction counts (naive vs optimized kernel mixes);
2. simulated cycles on each paper GPU;
3. *real* wall-clock on the vectorized CPU engine (fast path vs forced
   naive path over the same interval).
"""

import hashlib

import pytest

from repro.apps.cracking import CrackEngine, CrackTarget
from repro.gpusim.device import PAPER_DEVICES
from repro.gpusim.throughput import cycles_per_hash_simulated
from repro.keyspace import ALNUM_MIXED, Interval
from repro.kernels.variants import HashAlgorithm, KernelVariant, get_kernel


def test_a1_instruction_count_speedup(benchmark):
    def ratios():
        out = {}
        for family in ("1.x", "2.x", "3.0"):
            naive = get_kernel(HashAlgorithm.MD5, KernelVariant.NAIVE).mix_for(family)
            opt = get_kernel(HashAlgorithm.MD5, KernelVariant.OPTIMIZED).mix_for(family)
            out[family] = naive.total / opt.total
        return out

    speedups = benchmark(ratios)
    print(f"\ninstruction-count speedups: { {k: round(v, 3) for k, v in speedups.items()} }")
    for family, speedup in speedups.items():
        assert 1.15 < speedup < 1.45, family


def test_a1_simulated_cycle_speedup(benchmark):
    def ratios():
        out = {}
        for name, dev in PAPER_DEVICES.items():
            naive = get_kernel(HashAlgorithm.MD5, KernelVariant.NAIVE).mix_for(dev.family)
            opt = get_kernel(HashAlgorithm.MD5, KernelVariant.BYTE_PERM).mix_for(dev.family)
            out[name] = cycles_per_hash_simulated(dev.arch, naive) / cycles_per_hash_simulated(
                dev.arch, opt
            )
        return out

    speedups = benchmark(ratios)
    print(f"\nsimulated cycle speedups: { {k: round(v, 3) for k, v in speedups.items()} }")
    assert all(1.1 < s < 1.6 for s in speedups.values())


@pytest.mark.parametrize("variant", ["optimized", "naive"])
def test_a1_real_engine(benchmark, variant):
    # Same 200k-candidate interval, fast path vs forced full hashing.
    target = CrackTarget(
        algorithm=HashAlgorithm.MD5,
        digest=hashlib.md5(b"not-in-range").digest(),
        charset=ALNUM_MIXED,
        min_length=8,
        max_length=8,
    )
    interval = Interval(0, 200_000)

    def scan():
        engine = CrackEngine(target, batch_size=1 << 14, force_naive=(variant == "naive"))
        engine.search(interval)
        return engine.stats

    stats = benchmark.pedantic(scan, rounds=3, iterations=1)
    print(f"\n{variant}: {stats.mkeys_per_second:.2f} Mkeys/s on the CPU SIMT engine")
