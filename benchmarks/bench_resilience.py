"""BENCH — what storm-proofing costs when nothing is on fire.

The resilience layer (:mod:`repro.service.faultfs`, ``repro fsck``,
gateway load shedding, the circuit breaker) buys crash-consistency and
bounded degradation; this benchmark prices the purchase on the healthy
path and shows the two latencies the sick path trades between:

* **faultfs shim overhead** — checkpoint writes/s through a plain
  :class:`JobStore` vs one wrapped in an armed-but-silent
  :class:`FaultInjector` (all rates 0).  The delta is the per-write
  price of the injection hook every production write now carries.
* **fsck throughput** — jobs/s for a read-only scan of a healthy store,
  then wall-clock to repair one with a corrupted-checkpoint fraction.
  Bounds how long "fsck before restart" adds to an ops runbook.
* **shed latency** — how fast a saturated gateway (1 inflight slot,
  empty queue, slot held by a long-poll hog) refuses extra work with
  429 + ``Retry-After``.  The whole point of shedding: a refusal must
  be orders of magnitude cheaper than the work it refuses.
* **breaker fast-fail** — per-call latency against a dead address while
  the circuit is open vs the real connect-refused probes that opened
  it.  The breaker's value is this gap, paid on every call of an
  outage.

Standalone by design — resilience numbers are environment-theatre on a
shared CI runner, so this does NOT fold into ``run_all.py``::

    PYTHONPATH=src python benchmarks/bench_resilience.py [--quick]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import socket
import tempfile
import threading
import time
from pathlib import Path

from repro.core.progress import ProgressLog
from repro.keyspace import Interval
from repro.service import (
    ApiClientError,
    ApiKeyring,
    ApiServer,
    ApiServerThread,
    BreakerConfig,
    BreakerRegistry,
    CircuitOpenError,
    FaultConfig,
    FaultInjector,
    GatewayClient,
    GatewayUnreachable,
    JobStore,
    RetryPolicy,
    TenantConfig,
    TenantRegistry,
    fsck_store,
)
from repro.service.jobstore import JobSpec
from repro.service.resilience import BackoffPolicy

_WRITES = 400
_JOBS = 60
_SHED_PROBES = 50
_FAST_FAILS = 200


def _spec(i: int) -> JobSpec:
    return JobSpec(
        digest=hashlib.md5(b"resilience-%d" % i).digest(),
        charset="abcdefgo",
        max_length=3,
    )


def _checkpoint_rate(store: JobStore, writes: int) -> float:
    """save_progress writes/s against one job, alternating coverage."""
    store.submit(_spec(0), job_id="bench")
    log = store.load_progress("bench")
    started = time.perf_counter()
    for i in range(writes):
        log.mark_done(Interval(i * 4, i * 4 + 4))
        store.save_progress("bench", log)
    elapsed = time.perf_counter() - started
    return writes / elapsed if elapsed else 0.0


def bench_shim_overhead(writes: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-shim-") as root:
        plain = _checkpoint_rate(JobStore(Path(root) / "plain"), writes)
        armed = _checkpoint_rate(
            JobStore(
                Path(root) / "armed",
                faults=FaultInjector(FaultConfig(seed=7)),  # armed, all rates 0
            ),
            writes,
        )
    return {
        "writes": writes,
        "plain_writes_per_second": plain,
        "armed_writes_per_second": armed,
        "shim_overhead_ratio": plain / armed if armed else 0.0,
    }


def _populate(root: Path, jobs: int) -> JobStore:
    store = JobStore(root)
    for i in range(jobs):
        job_id = f"job-{i}"
        store.submit(_spec(i), job_id=job_id)
        log = store.load_progress(job_id)
        log.mark_done(Interval(0, 8))
        store.save_progress(job_id, log)  # a second generation → prev exists
        log.mark_done(Interval(8, 16))
        store.save_progress(job_id, log)
    return store


def bench_fsck(jobs: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-fsck-") as root:
        root = Path(root)
        _populate(root, jobs)

        started = time.perf_counter()
        report = fsck_store(root)
        scan = time.perf_counter() - started
        assert report["clean"], report["findings"]

        # Tear every 4th checkpoint the way a lying fsync leaves it.
        corrupted = 0
        for i in range(0, jobs, 4):
            path = root / f"job-{i}" / "checkpoint.json"
            path.write_text(path.read_text()[: path.stat().st_size // 2])
            corrupted += 1
        started = time.perf_counter()
        repaired = fsck_store(root, repair=True)
        repair = time.perf_counter() - started
        assert repaired["repaired"] >= corrupted, repaired
    return {
        "jobs": jobs,
        "scan_jobs_per_second": jobs / scan if scan else 0.0,
        "corrupted": corrupted,
        "repair_seconds": repair,
        "repair_jobs_per_second": corrupted / repair if repair else 0.0,
    }


def bench_shed_latency(probes: int) -> dict:
    """Median/worst time for a saturated gateway to refuse a request."""
    with tempfile.TemporaryDirectory(prefix="bench-shed-") as root:
        store = JobStore(root)
        server = ApiServer(
            store,
            ApiKeyring({"k": "acme"}),
            TenantRegistry([TenantConfig("acme", rate=1e6, burst=1e6)]),
            max_inflight=1,
            max_queue=0,
        )
        thread = ApiServerThread(server)
        host, port = thread.start()
        url = f"http://{host}:{port}"
        store.submit(_spec(0), job_id="acme--hog")
        hogging = threading.Event()

        def hog() -> None:
            with GatewayClient(url, "k") as client:
                # Drain the submit event first so the second poll has
                # nothing to deliver and actually waits out its timeout,
                # holding the single inflight slot for ~2 s.
                cursor = client.events("acme--hog", timeout=0.0)["cursor"]
                hogging.set()
                client.events("acme--hog", cursor=cursor, timeout=2.0)

        hog_thread = threading.Thread(target=hog)
        hog_thread.start()
        hogging.wait()
        time.sleep(0.2)  # let the long-poll actually occupy the slot
        latencies = []
        shed = 0
        with GatewayClient(url, "k", retry=RetryPolicy(attempts=1)) as client:
            for _ in range(probes):
                started = time.perf_counter()
                try:
                    client.jobs()
                except ApiClientError as exc:
                    if exc.status == 429:
                        shed += 1
                latencies.append(time.perf_counter() - started)
        hog_thread.join()
        thread.stop()
    latencies.sort()
    return {
        "probes": probes,
        "shed": shed,
        "p50_ms": latencies[len(latencies) // 2] * 1e3,
        "p99_ms": latencies[int(len(latencies) * 0.99)] * 1e3,
    }


def bench_breaker_fast_fail(calls: int) -> dict:
    """Open a breaker against a dead port, then price its fast-fails."""
    with socket.socket() as probe:  # reserve, then release, a dead port
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
    config = BreakerConfig(failures=3, window=60.0, period=60.0)
    registry = BreakerRegistry(config)
    client = GatewayClient(
        f"http://127.0.0.1:{dead_port}",
        "k",
        retry=RetryPolicy(attempts=1, backoff=BackoffPolicy(base=1e-6, cap=1e-6, jitter=0.0)),
        breakers=registry,
    )
    connect_times, fast_times = [], []
    with client:
        for _ in range(config.failures):  # the probes that open the circuit
            started = time.perf_counter()
            try:
                client.jobs()
            except GatewayUnreachable:
                pass
            connect_times.append(time.perf_counter() - started)
        for _ in range(calls):
            started = time.perf_counter()
            try:
                client.jobs()
            except CircuitOpenError:
                pass
            fast_times.append(time.perf_counter() - started)
    assert client.stats["breaker_fast_fails"] == calls, client.stats
    connect_avg = sum(connect_times) / len(connect_times)
    fast_avg = sum(fast_times) / len(fast_times)
    return {
        "calls": calls,
        "connect_fail_ms": connect_avg * 1e3,
        "fast_fail_ms": fast_avg * 1e3,
        "speedup": connect_avg / fast_avg if fast_avg else 0.0,
    }


def run(quick: bool = False) -> dict:
    scale = 4 if quick else 1
    return {
        "name": "service_resilience",
        "shim": bench_shim_overhead(_WRITES // scale),
        "fsck": bench_fsck(_JOBS // scale),
        "shed": bench_shed_latency(_SHED_PROBES // scale),
        "breaker": bench_breaker_fast_fail(_FAST_FAILS // scale),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller probes")
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    print(json.dumps(payload, indent=2))
    shim = payload["shim"]["shim_overhead_ratio"]
    breaker = payload["breaker"]["speedup"]
    print(
        f"# shim overhead {shim:.2f}x, shed p50 {payload['shed']['p50_ms']:.1f} ms, "
        f"breaker fast-fail {breaker:.1f}x faster than a connect failure"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
