"""CI perf gate: fail the build when the parallelism race is lost.

Runs the backend-scaling and scheduler benchmarks (quick mode) and
enforces floors on the headline ratios::

    PYTHONPATH=src python benchmarks/perf_gate.py

Floors on a >= 4-core runner (the shape the acceptance criteria target):

* ``speedup_process_vs_serial >= 1.5`` — a process pool that loses to a
  single core means the dispatch path regressed (cold pools, per-chunk
  pickling, per-chunk round trips).
* ``scheduler_vs_sequential >= 0.9`` — fair-share multiplexing may cost
  at most 10% over running the same jobs back-to-back.

On hosts with fewer than 4 CPUs a process pool cannot beat serial no
matter how good the dispatch is (the workers time-share the same core),
so the process floor relaxes to a warm-pool sanity bound and the
scheduler floor stays — scheduler overhead is core-count independent.
The applied floors are printed so a gate failure is self-explaining.

Escape hatch for noisy runners: set ``REPRO_PERF_GATE=skip`` to turn the
gate into a report-only run (exit 0, ratios still printed), or
``REPRO_PERF_GATE=floor:<process>,<scheduler>`` to override the floors,
e.g. ``REPRO_PERF_GATE=floor:1.2,0.8``.  Use it to unblock a flaky
runner, not to ratchet floors down permanently — the override is printed
loudly in the job log.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_backend_scaling
import bench_scheduler

#: Acceptance floors on the 4-core runner shape.
PROCESS_FLOOR = 1.5
SCHEDULER_FLOOR = 0.9

#: Below this core count a process pool is physically unable to beat
#: serial (workers time-share one core); the relaxed floor only asserts
#: the warm-pool dispatch path is not pathological.
MIN_CPUS_FOR_SPEEDUP = 4
RELAXED_PROCESS_FLOOR = 0.5

GATE_ENV = "REPRO_PERF_GATE"


def floors_for(cpus: int) -> tuple[float, float, str]:
    """(process_floor, scheduler_floor, reason) for this host shape."""
    override = os.environ.get(GATE_ENV, "")
    if override.startswith("floor:"):
        try:
            process_s, scheduler_s = override[len("floor:"):].split(",")
            return (
                float(process_s),
                float(scheduler_s),
                f"OVERRIDDEN via {GATE_ENV}={override!r}",
            )
        except ValueError:
            raise SystemExit(
                f"error: bad {GATE_ENV} override {override!r}; "
                "expected floor:<process>,<scheduler>"
            ) from None
    if cpus < MIN_CPUS_FOR_SPEEDUP:
        return (
            RELAXED_PROCESS_FLOOR,
            SCHEDULER_FLOOR,
            f"relaxed: {cpus} CPU(s) < {MIN_CPUS_FOR_SPEEDUP} "
            "(process pools cannot beat serial on a shared core)",
        )
    return PROCESS_FLOOR, SCHEDULER_FLOOR, "standard 4-core acceptance floors"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true",
        help="full-size benchmarks (default: quick, the CI shape)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the measured ratios as JSON",
    )
    args = parser.parse_args(argv)

    skip = os.environ.get(GATE_ENV) == "skip"
    cpus = os.cpu_count() or 1
    process_floor, scheduler_floor, reason = floors_for(cpus)
    print(f"perf gate on {cpus} CPU(s): process >= {process_floor}, "
          f"scheduler >= {scheduler_floor} ({reason})")

    scaling = bench_backend_scaling.run(quick=not args.full, workers=args.workers)
    scheduler = bench_scheduler.run(quick=not args.full, workers=args.workers)
    ratios = {
        "host_cpus": cpus,
        "speedup_process_vs_serial": scaling["speedup_process_vs_serial"],
        "speedup_thread_vs_serial": scaling["speedup_thread_vs_serial"],
        "scheduler_vs_sequential": scheduler["scheduler_vs_sequential"],
        "floors": {"process": process_floor, "scheduler": scheduler_floor},
        "all_results_identical": (
            scaling["all_results_identical"]
            and scheduler["all_results_identical"]
        ),
    }
    print(f"  process/serial : {ratios['speedup_process_vs_serial']:.2f}x")
    print(f"  thread/serial  : {ratios['speedup_thread_vs_serial']:.2f}x")
    print(f"  scheduler/seq  : {ratios['scheduler_vs_sequential']:.2f}x")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(ratios, handle, indent=2)
            handle.write("\n")

    failures = []
    if not ratios["all_results_identical"]:
        failures.append("backends disagreed on results (correctness, not perf)")
    if ratios["speedup_process_vs_serial"] < process_floor:
        failures.append(
            f"speedup_process_vs_serial "
            f"{ratios['speedup_process_vs_serial']:.2f} < {process_floor}"
        )
    if ratios["scheduler_vs_sequential"] < scheduler_floor:
        failures.append(
            f"scheduler_vs_sequential "
            f"{ratios['scheduler_vs_sequential']:.2f} < {scheduler_floor}"
        )
    if failures:
        for failure in failures:
            print(f"PERF GATE FAIL: {failure}", file=sys.stderr)
        if skip:
            print(f"{GATE_ENV}=skip set: reporting only, not failing the build")
            return 0
        print(
            f"(noisy runner? rerun, or set {GATE_ENV}=skip / "
            f"{GATE_ENV}=floor:<p>,<s> — see docs/PERFORMANCE.md)",
            file=sys.stderr,
        )
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
