"""EXP A8 (extension) — "clusters of greater complexity, size, and
heterogeneity" (the paper's stated major future-work goal).

Generates deep random dispatch trees far beyond the paper's 4-node testbed
and measures:

* dispatch efficiency on random heterogeneous trees (dozens of devices
  over 3 dispatch levels, throughputs spanning 40x);
* the benefit of topology reconfiguration (re-parenting a dead
  dispatcher's children) as trees grow deeper, where a single dispatcher
  death silences ever larger subtrees.
"""

import random

import pytest

from repro.cluster import ClusterNode, FaultPlan, GPUWorker, run_with_faults, simulate_run


def random_tree(seed: int, breadth: int = 4, depth: int = 3) -> ClusterNode:
    """A heterogeneous dispatch tree: every node also owns 1-2 devices."""
    rng = random.Random(seed)
    counter = {"n": 0}

    def build(level: int) -> ClusterNode:
        counter["n"] += 1
        name = f"n{counter['n']}"
        devices = [
            GPUWorker(f"{name}-g{i}", rng.uniform(50e6, 2000e6))
            for i in range(rng.randint(1, 2))
        ]
        children = []
        if level < depth:
            children = [build(level + 1) for _ in range(rng.randint(2, breadth))]
        return ClusterNode(name, devices=devices, children=children)

    root = build(1)
    root.validate_tree()
    return root


def test_a8_efficiency_holds_at_scale(benchmark):
    def sweep():
        out = {}
        for seed in (1, 2, 3):
            tree = random_tree(seed)
            n_devices = len(tree.subtree_devices())
            result = simulate_run(tree, int(tree.aggregate_throughput * 20))
            out[f"seed{seed}"] = (n_devices, result.dispatch_efficiency)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for label, (n, eff) in results.items():
        print(f"{label}: {n:3d} devices over 3 levels -> dispatch efficiency {eff:.4f}")
        assert n > 10
        assert eff > 0.98  # linear scalability survives depth and skew


def test_a8_reparenting_matters_more_in_deep_trees(benchmark):
    def compare():
        tree_a = random_tree(7)
        # Pick the child subtree holding the most aggregate power.
        victim = max(tree_a.children, key=lambda c: c.aggregate_throughput)
        total = int(tree_a.aggregate_throughput * 30)
        rounds = total // 20
        plan_off = FaultPlan(failures={victim.name: 2})
        plan_on = FaultPlan(failures={victim.name: 2}, reparent_orphans=True)
        off = run_with_faults(random_tree(7), total, rounds, plan=plan_off)
        on = run_with_faults(random_tree(7), total, rounds, plan=plan_on)
        lost_share = victim.aggregate_throughput / tree_a.aggregate_throughput
        return lost_share, off, on

    lost_share, off, on = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nkilled dispatcher held {lost_share:.0%} of the cluster's power")
    print(f"without reparenting: {off.wall_time:6.1f}s wall")
    print(f"with reparenting   : {on.wall_time:6.1f}s wall "
          f"({off.wall_time / on.wall_time:.2f}x faster)")
    assert off.covered_exactly and on.covered_exactly
    assert on.wall_time < off.wall_time
    # The deeper/larger the silenced subtree, the larger the win.
    assert lost_share > 0.10
