"""EXP T5 — Table V: instruction count of the optimized MD5 kernel.

The reversal + early-exit kernel runs 46 of the 64 steps; the traced and
lowered counts are printed against the paper's Table V.
"""

from repro.analysis.tables import compare_rows, render_comparison, max_abs_delta
from repro.kernels.variants import (
    HashAlgorithm,
    KernelVariant,
    PAPER_TABLE_V,
    traced_mixes,
)


def reproduce_table5() -> dict:
    mixes = traced_mixes(HashAlgorithm.MD5, KernelVariant.OPTIMIZED)
    return {family: mixes[family].as_table_row() for family in ("1.x", "2.x")}


def test_table5_optimized_counts(benchmark):
    ours = benchmark(reproduce_table5)
    for family, paper_label in (("1.x", "1.*"), ("2.x", "2.* and 3.0")):
        paper_row = PAPER_TABLE_V[family].as_table_row()
        comparisons = compare_rows(
            {k: v for k, v in paper_row.items() if k not in ("PRMT (byte_perm)", "SHF (funnel shift)")},
            ours[family],
        )
        print()
        print(render_comparison(f"Table V ({paper_label}) - reversal + early exit", comparisons))
        assert max_abs_delta(comparisons) < 6.0
    # 2.x shift columns: exactly one rotate per forward step (46).
    assert ours["2.x"]["SHR/SHL"] == 46
    assert ours["2.x"]["IMAD/ISCADD"] == 46
