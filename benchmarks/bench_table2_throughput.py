"""EXP T2 — Table II: instruction throughput per class and capability.

Regenerates the per-class peak throughputs from the architecture objects
and validates them against the paper; additionally cross-checks each value
with the cycle-level scheduler simulator running a single-class
microbenchmark kernel (the software analogue of the paper's "ad-hoc
kernels repeating many times a certain set of instructions").
"""

import pytest

from repro.analysis.paper_data import PAPER_TABLE_II
from repro.analysis.tables import render_table
from repro.gpusim.arch import ARCHITECTURES
from repro.gpusim.scheduler import MultiprocessorSim
from repro.kernels import InstructionClass, InstructionMix

_ROW_TO_CLASS = {
    "32-bit integer ADD": InstructionClass.IADD,
    "32-bit bitwise AND/OR/XOR": InstructionClass.LOP,
    "32-bit integer shift": InstructionClass.SHIFT,
    "32-bit integer MAD": InstructionClass.IMAD,
}


def reproduce_table2() -> dict:
    return {
        row: {cc: int(ARCHITECTURES[cc].peak_ops(cls)) for cc in ("1.*", "2.0", "2.1", "3.0")}
        for row, cls in _ROW_TO_CLASS.items()
    }


def microbench_port_peak(cc: str, cls: InstructionClass) -> float:
    """Saturate one class through the cycle simulator, full ILP."""
    arch = ARCHITECTURES[cc]
    mix = InstructionMix({cls: 256})
    sim = MultiprocessorSim(arch, warps=48, dep_latency=10.0)
    result = sim.run(mix, interleave=4)
    return result.ops_per_cycle


def test_table2_instruction_throughput(benchmark):
    ours = benchmark(reproduce_table2)
    print()
    print(
        render_table(
            "Table II - instruction throughput (reproduced, ops/cycle/MP)",
            columns=["1.*", "2.0", "2.1", "3.0"],
            rows=[[ours[row][cc] for cc in ("1.*", "2.0", "2.1", "3.0")] for row in ours],
            row_labels=list(ours),
        )
    )
    assert ours == PAPER_TABLE_II
    print("All cells match the paper exactly.")


@pytest.mark.parametrize("cc", ["2.1", "3.0"])
def test_table2_cycle_sim_cross_check(benchmark, cc):
    # The dedicated shift/MAD port peak must emerge from the cycle sim too.
    measured = benchmark(microbench_port_peak, cc, InstructionClass.SHIFT)
    expected = PAPER_TABLE_II["32-bit integer shift"][cc]
    print(f"\ncycle-sim shift throughput on {cc}: {measured:.1f} ops/cycle (Table II: {expected})")
    assert measured == pytest.approx(expected, rel=0.10)
