"""BENCH — gateway admission throughput and event-stream fan-out.

Measures the crack-as-a-service front door, not the kernels: how fast
concurrent tenants can push jobs through authentication + rate limiting
+ quota + the durable store (submissions/s), how many long-poll event
streams the asyncio loop serves at once (events/s across the fan-out),
and how fast the status plane drains (status reads/s).  The three walls
map onto the paper's phase split the way the gateway experiences it:
scatter = job intake, search = stream serving, gather = status drain.

Standalone::

    PYTHONPATH=src python benchmarks/bench_api.py [--quick]

or imported by :mod:`benchmarks.run_all`, which folds the row into
``BENCH_cracking.json``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import tempfile
import threading
import time

from repro.service import (
    ApiKeyring,
    ApiServer,
    ApiServerThread,
    GatewayClient,
    JobStore,
    TenantConfig,
    TenantRegistry,
)
from repro.service.jobstore import JobSpec

#: >= 4 tenants so fair-share weights and per-tenant gauges all light up.
TENANT_NAMES = ("acme", "zeta", "tiny", "bulk")
_JOBS = 1000
_JOBS_QUICK = 200
_SUBMITTERS = 8
_STREAMS = 32


def _spec(i: int) -> dict:
    return JobSpec(
        digest=hashlib.md5(b"bench-%d" % i).digest(),
        charset="abcdefgo",
        max_length=3,
    ).to_dict()


def _registry(total_jobs: int) -> tuple[ApiKeyring, TenantRegistry]:
    keys = {f"k-{name}": name for name in TENANT_NAMES}
    configs = [
        TenantConfig(
            name,
            weight=weight,
            max_queued=total_jobs,  # admission sized for the burst on purpose
            rate=1e6,
            burst=1e6,
        )
        for weight, name in enumerate(TENANT_NAMES, start=1)
    ]
    return ApiKeyring(keys), TenantRegistry(configs)


def _submit_burst(url: str, total_jobs: int) -> float:
    """Fan *total_jobs* submits over _SUBMITTERS threads; returns seconds.

    Worker *w* owns the stride ``w, w+_SUBMITTERS, ...`` and submits as
    tenant ``w % len(TENANT_NAMES)`` — with _SUBMITTERS a multiple of the
    tenant count, job ``i`` deterministically lands under tenant
    ``i % len(TENANT_NAMES)``, which the stream/status phases rely on.
    """
    errors: list[Exception] = []

    def submit_loop(worker: int) -> None:
        # GatewayClient is not thread-safe: one keep-alive socket each.
        tenant = TENANT_NAMES[worker % len(TENANT_NAMES)]
        with GatewayClient(url, f"k-{tenant}") as client:
            for i in range(worker, total_jobs, _SUBMITTERS):
                try:
                    client.submit(_spec(i), priority=1 + i % 4, job=f"job-{i}")
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)
                    return

    threads = [
        threading.Thread(target=submit_loop, args=(w,)) for w in range(_SUBMITTERS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed


def _stream_fanout(url: str) -> tuple[float, int]:
    """_STREAMS concurrent long-polls drain their timelines; (secs, events)."""
    delivered = {"events": 0}
    lock = threading.Lock()

    def stream(index: int) -> None:
        tenant = TENANT_NAMES[index % len(TENANT_NAMES)]
        with GatewayClient(url, f"k-{tenant}") as client:
            job = f"{tenant}--job-{index}"
            cursor, got = 0, 1
            while got:
                delta = client.events(job, cursor=cursor, timeout=0.0)
                got = len(delta["events"])
                cursor = delta["cursor"]
                with lock:
                    delivered["events"] += got

    threads = [threading.Thread(target=stream, args=(i,)) for i in range(_STREAMS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, delivered["events"]


def _status_drain(url: str) -> tuple[float, int]:
    """Every tenant lists its jobs and reads its quota; (secs, jobs seen)."""
    seen = 0
    started = time.perf_counter()
    for name in TENANT_NAMES:
        with GatewayClient(url, f"k-{name}") as client:
            listing = client.jobs()
            seen += len(listing["jobs"])
            client.quota(name)
    return time.perf_counter() - started, seen


def run(quick: bool = False, workers: int | None = None) -> dict:
    """Returns the ``BENCH_cracking.json`` payload fragment."""
    total_jobs = _JOBS_QUICK if quick else _JOBS
    with tempfile.TemporaryDirectory(prefix="bench-api-") as root:
        store = JobStore(root)
        keyring, tenants = _registry(total_jobs)
        server = ApiServer(store, keyring, tenants, poll_interval=0.01)
        thread = ApiServerThread(server)
        host, port = thread.start()
        url = f"http://{host}:{port}"
        try:
            scatter = _submit_burst(url, total_jobs)
            search, events = _stream_fanout(url)
            gather, listed = _status_drain(url)
        finally:
            thread.stop()
        metrics = server.recorder.export()
    row = {
        "backend": "gateway",
        "workers": _SUBMITTERS,
        "batch_size": total_jobs,
        "tenants": len(TENANT_NAMES),
        "jobs": total_jobs,
        "submissions_per_second": total_jobs / scatter if scatter else 0.0,
        "streams": _STREAMS,
        "events_delivered": events,
        "events_per_second": events / search if search else 0.0,
        "status_reads_per_second": listed / gather if gather else 0.0,
        # The gateway moves requests, not key tests; requests/s is the
        # comparable throughput figure the shared row schema expects.
        "keys_per_second": (total_jobs + events + listed) / (scatter + search + gather),
        "phases": {"scatter": scatter, "search": search, "gather": gather},
        "metrics": metrics,
    }
    return {
        "name": "api_gateway",
        "results": [row],
        "submissions_per_second": row["submissions_per_second"],
        # Consistency bar: every job submitted is visible to exactly its
        # owning tenant; the status drain must count them all, once.
        "all_results_identical": listed == total_jobs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller burst")
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
