"""EXP T1 — Table I: multiprocessor architecture per compute capability.

Regenerates the architecture table from the simulator's own
:data:`repro.gpusim.arch.ARCHITECTURES` objects and checks it cell-by-cell
against the paper's published values.
"""

from repro.analysis.paper_data import PAPER_TABLE_I
from repro.analysis.tables import render_table
from repro.gpusim.arch import ARCHITECTURES


def reproduce_table1() -> dict:
    out = {}
    for name in ("1.*", "2.0", "2.1", "3.0"):
        arch = ARCHITECTURES[name]
        out[name] = {
            "Cores per MP": arch.cores_per_mp,
            "Groups of cores per MP": arch.core_groups,
            "Group size": arch.group_size,
            "Issue time (clock cycles)": arch.issue_time,
            "Warp schedulers": arch.warp_schedulers,
            "Issue mode": "dual-issue" if arch.dual_issue else "single-issue",
        }
    return out


def test_table1_architecture(benchmark):
    ours = benchmark(reproduce_table1)
    rows = list(PAPER_TABLE_I["1.*"].keys())
    columns = list(PAPER_TABLE_I.keys())
    print()
    print(
        render_table(
            "Table I - multiprocessor architecture (reproduced)",
            columns=columns,
            rows=[[ours[cc][row] for cc in columns] for row in rows],
            row_labels=rows,
        )
    )
    assert ours == PAPER_TABLE_I
    print("All cells match the paper exactly.")
