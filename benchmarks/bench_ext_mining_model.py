"""EXP A4 (extension) — SHA256d mining on the paper's GPUs.

The paper motivates exhaustive search with Bitcoin mining but never
benches it; this extension pushes the mining kernel through the same
accounting + throughput pipeline and prints the predicted Mhash/s for the
evaluation GPUs, cross-checked against the real vectorized miner's
per-core rate.
"""

from repro.analysis.tables import render_table
from repro.gpusim.device import DEVICES, PAPER_DEVICES
from repro.gpusim.mining import mining_achieved_mhash, mining_theoretical_mhash
from repro.keyspace import Interval


def reproduce_mining_table() -> dict:
    out = {}
    for name in ("8600M", "8800", "540M", "550Ti", "660", "TitanCC35"):
        dev = DEVICES[name]
        out[name] = (mining_theoretical_mhash(dev), mining_achieved_mhash(dev))
    return out


def test_ext_mining_gpu_model(benchmark):
    table = benchmark(reproduce_mining_table)
    print()
    print(
        render_table(
            "Extension - SHA256d mining model (Mhash/s)",
            columns=["theoretical", "achieved"],
            rows=[list(v) for v in table.values()],
            row_labels=list(table),
        )
    )
    # Monotone in device capability within a family, tens of Mhash/s for
    # the era parts — the magnitude GPU miners actually reported.
    assert table["660"][0] > table["550Ti"][0] > table["8600M"][0]
    assert 10 < table["660"][1] < 150
    assert table["TitanCC35"][0] > 3 * table["660"][0]


def test_ext_real_miner_cross_check(benchmark):
    # The NumPy miner's per-core rate, for scale (CPU lane != CUDA core).
    import numpy as np

    from repro.apps.mining import MiningJob, mine_interval

    rng = np.random.default_rng(1)
    job = MiningJob(rng.integers(0, 256, 80, dtype=np.uint8).tobytes(), 48)
    n = 1 << 15
    benchmark.pedantic(
        mine_interval, args=(job, Interval(0, n)), rounds=3, iterations=1
    )
    rate = n / benchmark.stats["mean"] / 1e6 if benchmark.stats else float("nan")
    print(f"\nreal vectorized miner: {rate:.2f} Mhash/s per CPU core")
    if benchmark.stats:
        assert rate > 0.05
