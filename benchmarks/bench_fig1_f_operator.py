"""EXP F1 — Figure 1: the ``f(id)`` conversion operator.

Times the id -> key bijection (scalar and vectorized) and verifies the
published enumeration example.  The scalar cost of ``f`` is the ``K_f`` of
the cost model; the vectorized generator is the per-grid analogue.
"""

from repro.keyspace import ALNUM_MIXED, Charset, KeyMapping, KeyOrder, index_to_key
from repro.keyspace.vectorized import batch_keys

ABC = Charset("abc", name="abc")


def test_fig1_mapping_example(benchmark):
    # The paper's worked example: [0..7] -> [eps, a, b, c, aa, ab, ac, ba].
    keys = benchmark(lambda: [index_to_key(i, ABC) for i in range(8)])
    print(f"\nf(0..7) over {{a,b,c}} = {keys}")
    assert keys == ["", "a", "b", "c", "aa", "ab", "ac", "ba"]


def test_fig1_scalar_conversion_cost(benchmark):
    # K_f for a realistic 8-char alphanumeric id (deep in the space).
    mapping = KeyMapping(ALNUM_MIXED, 1, 8, KeyOrder.PREFIX_FASTEST)
    index = mapping.size - 12345
    key = benchmark(mapping.key_at, index)
    assert len(key) == 8
    assert mapping.index_of(key) == index


def test_fig1_vectorized_block_generation(benchmark):
    # The per-grid conversion: 16k candidates materialized in one call.
    mapping = KeyMapping(ALNUM_MIXED, 8, 8, KeyOrder.PREFIX_FASTEST)

    def generate():
        return batch_keys(mapping, 10_000_000, 1 << 14)

    segments = benchmark(generate)
    (_, length, chars), = segments
    assert chars.shape == (1 << 14, 8)
    rate = (1 << 14) / benchmark.stats["mean"] / 1e6 if benchmark.stats else float("nan")
    print(f"\nvectorized f(id): {rate:.2f} Mkeys/s of candidate generation")
