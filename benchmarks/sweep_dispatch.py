"""SWEEP — grid the dispatch knobs and lock the winners into tuning.json.

Drives :mod:`repro.tuning.sweep` over worker count x chunk size x gather
batch, prints the markdown audit report, and records the measured-best
configuration per ``(backend, workers)`` into the versioned tuning store
that :func:`repro.core.backend.resolve_backend` consults::

    PYTHONPATH=src python benchmarks/sweep_dispatch.py [--quick]
        [--out tuning.json] [--summary SWEEP_dispatch.md] [--dry-run]

This is the optimization loop the perf work runs on: measure, compare
against the serial baseline, persist only improvements, re-run after any
dispatch-path change.  ``repro tune`` is the same engine with the same
flags for end users.
"""

from __future__ import annotations

import argparse
import sys

from repro.tuning import TuningStore, default_tuning_path
from repro.tuning.sweep import apply_best, render_summary, sweep_dispatch


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller space, single repeat"
    )
    parser.add_argument("--space", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=1 << 14)
    parser.add_argument(
        "--backends", default="thread,process",
        help="comma-separated pool backends to grid",
    )
    parser.add_argument(
        "--workers", default=None,
        help="comma-separated worker counts (default: host-derived)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="tuning.json to update (default: $REPRO_TUNING_FILE or ./tuning.json)",
    )
    parser.add_argument(
        "--summary", metavar="PATH", default=None,
        help="write the markdown report to PATH as well as stdout",
    )
    parser.add_argument(
        "--dry-run", action="store_true", help="measure only; write nothing"
    )
    args = parser.parse_args(argv)

    space = args.space if args.space is not None else (60_000 if args.quick else 400_000)
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    workers_grid = None
    if args.workers:
        workers_grid = tuple(int(w) for w in args.workers.split(",") if w.strip())
    report = sweep_dispatch(
        space=space,
        backends=tuple(b.strip() for b in args.backends.split(",") if b.strip()),
        workers_grid=workers_grid,
        batch_size=args.batch_size,
        repeats=repeats,
        progress=lambda line: print(f"  {line}", file=sys.stderr),
    )
    path = args.out if args.out else default_tuning_path()
    summary = render_summary(report, store_path=None if args.dry_run else path)
    print(summary)
    if args.summary:
        with open(args.summary, "w") as handle:
            handle.write(summary)
    if args.dry_run:
        return 0
    store = TuningStore(path)
    changed = apply_best(report, store)
    print(
        f"{len(changed)} config(s) improved and saved to {path}"
        if changed
        else f"no improvement over stored bests in {path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
