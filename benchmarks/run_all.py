"""Benchmark runner: emits the repo's perf trajectory, ``BENCH_cracking.json``.

Runs the backend-scaling sweep (and any future engine benchmarks) and
writes a single schema-stable JSON document so successive PRs can be
compared::

    PYTHONPATH=src python benchmarks/run_all.py [--quick] [--output PATH]

Schema (``bench-cracking/v3``)::

    {
      "schema": "bench-cracking/v3",
      "generated_at": <unix seconds>,
      "host": {"cpus": N, "platform": "..."},
      "benchmarks": [<bench payloads, each with "name" and "results">],
      "summary": {
        "best_keys_per_second": ...,
        "speedup_process_vs_serial": ...,
        "speedup_thread_vs_serial": ...,
        "scheduler_vs_sequential": ...,
        "elastic_speedup_4_agents": ...,
        "overheads": {"backend_scaling": {...}, "scheduler": {...}},
        "all_results_identical": true
      }
    }

v2 over v1: every result row embeds a ``repro-metrics/v2`` export under
``"metrics"`` (validated here via :func:`repro.obs.validate_metrics`) and
a ``"phases"`` scatter/search/gather seconds breakdown derived from it —
the paper's ``K_scatter``/``K_search``/``K_gather`` split per
configuration.

v3 over v2: ``summary.speedup_thread_vs_serial`` joins the process
speedup, and ``summary.overheads`` carries the per-phase dispatch/gather
wall-clock ratios of the best process row and the scheduler row — so a
parallelism regression is attributable to a phase, not just visible as a
worse ratio.  Benchmarks run warm (pool start-up excluded) because
production pools are persistent.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_api
import bench_backend_scaling
import bench_elastic
import bench_scheduler
import bench_transport

from repro.obs import validate_metrics

SCHEMA = "bench-cracking/v3"


def _summary_overheads(scaling: dict, scheduler: dict) -> dict:
    """Headline dispatch/gather ratios: best process row + scheduler row."""
    process_rows = [
        r for r in scaling["results"]
        if r["backend"] == "process" and "overheads" in r
    ]
    best_process = max(
        process_rows, key=lambda r: r["keys_per_second"], default=None
    )
    sched_row = next(
        (r for r in scheduler["results"] if r.get("mode") == "scheduler"), None
    )
    empty = {"dispatch_ratio": 0.0, "gather_ratio": 0.0}
    return {
        "backend_scaling": best_process["overheads"] if best_process else empty,
        "scheduler": sched_row.get("overheads", empty) if sched_row else empty,
    }


def run_all(quick: bool = False, workers: int | None = None) -> dict:
    benchmarks = [
        bench_backend_scaling.run(quick=quick, workers=workers),
        bench_scheduler.run(quick=quick, workers=workers),
        bench_transport.run(quick=quick, workers=workers),
        bench_api.run(quick=quick, workers=workers),
        bench_elastic.run(quick=quick, workers=workers),
    ]
    best = max(
        (r["keys_per_second"] for b in benchmarks for r in b["results"]),
        default=0.0,
    )
    return {
        "schema": SCHEMA,
        "generated_at": int(time.time()),
        "host": {"cpus": os.cpu_count() or 1, "platform": platform.platform()},
        "benchmarks": benchmarks,
        "summary": {
            "best_keys_per_second": best,
            "speedup_process_vs_serial": benchmarks[0]["speedup_process_vs_serial"],
            "speedup_thread_vs_serial": benchmarks[0]["speedup_thread_vs_serial"],
            "scheduler_vs_sequential": benchmarks[1]["scheduler_vs_sequential"],
            "tcp_vs_in_process": benchmarks[2]["tcp_vs_in_process"],
            "api_submissions_per_second": benchmarks[3]["submissions_per_second"],
            "elastic_speedup_4_agents": benchmarks[4]["elastic_speedup_4_agents"],
            "overheads": _summary_overheads(benchmarks[0], benchmarks[1]),
            "all_results_identical": all(
                b.get("all_results_identical", True) for b in benchmarks
            ),
        },
    }


def validate(document: dict) -> list[str]:
    """Schema check used by CI's bench smoke; returns a list of problems."""
    problems = []
    if document.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}")
    if not isinstance(document.get("generated_at"), int):
        problems.append("generated_at must be an int (unix seconds)")
    host = document.get("host")
    if not isinstance(host, dict) or not isinstance(host.get("cpus"), int):
        problems.append("host.cpus must be an int")
    benches = document.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        problems.append("benchmarks must be a non-empty list")
    else:
        for bench in benches:
            if not isinstance(bench.get("name"), str):
                problems.append("every benchmark needs a name")
            results = bench.get("results")
            if not isinstance(results, list) or not results:
                problems.append("every benchmark needs non-empty results")
                continue
            for row in results:
                for key in ("backend", "workers", "batch_size", "keys_per_second"):
                    if key not in row:
                        problems.append(f"result row missing {key!r}")
                phases = row.get("phases")
                if not isinstance(phases, dict) or not {
                    "scatter", "search", "gather"
                } <= set(phases):
                    problems.append(
                        "result row needs phases.{scatter,search,gather}"
                    )
                metrics = row.get("metrics")
                if not isinstance(metrics, dict):
                    problems.append("result row needs an embedded metrics export")
                else:
                    problems.extend(
                        f"metrics: {p}" for p in validate_metrics(metrics)
                    )
    gateway = next(
        (b for b in benches or [] if isinstance(b, dict) and b.get("name") == "api_gateway"),
        None,
    )
    if gateway is None:
        problems.append("benchmarks must include the api_gateway row")
    else:
        for row in gateway.get("results") or [{}]:
            for key in ("tenants", "jobs", "submissions_per_second", "streams",
                        "events_per_second"):
                if key not in row:
                    problems.append(f"api_gateway row missing {key!r}")
    summary = document.get("summary")
    if not isinstance(summary, dict):
        problems.append("summary object is required")
        return problems
    for key in (
        "speedup_process_vs_serial",
        "speedup_thread_vs_serial",
        "scheduler_vs_sequential",
        "elastic_speedup_4_agents",
    ):
        if not isinstance(summary.get(key), (int, float)):
            problems.append(f"summary.{key} must be a number")
    overheads = summary.get("overheads")
    if not isinstance(overheads, dict):
        problems.append("summary.overheads is required")
    else:
        for group in ("backend_scaling", "scheduler"):
            ratios = overheads.get(group)
            if not isinstance(ratios, dict) or not {
                "dispatch_ratio", "gather_ratio"
            } <= set(ratios):
                problems.append(
                    f"summary.overheads.{group} needs dispatch_ratio/gather_ratio"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke: ~10 seconds")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default="BENCH_cracking.json")
    parser.add_argument(
        "--validate", metavar="PATH", default=None,
        help="validate an existing document instead of benchmarking",
    )
    args = parser.parse_args(argv)
    if args.validate:
        with open(args.validate) as handle:
            problems = validate(json.load(handle))
        for problem in problems:
            print(f"SCHEMA ERROR: {problem}", file=sys.stderr)
        print(f"{args.validate}: {'INVALID' if problems else 'ok'}")
        return 1 if problems else 0
    document = run_all(quick=args.quick, workers=args.workers)
    problems = validate(document)
    if problems:  # never emit a document CI would reject
        for problem in problems:
            print(f"SCHEMA ERROR: {problem}", file=sys.stderr)
        return 1
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    summary = document["summary"]
    print(f"wrote {args.output}")
    print(f"best throughput : {summary['best_keys_per_second'] / 1e6:.2f} Mkeys/s")
    print(f"process/serial  : {summary['speedup_process_vs_serial']:.2f}x "
          f"on {document['host']['cpus']} cpus")
    print(f"thread/serial   : {summary['speedup_thread_vs_serial']:.2f}x")
    print(f"scheduler/seq   : {summary['scheduler_vs_sequential']:.2f}x")
    print(f"elastic 4-agent : {summary['elastic_speedup_4_agents']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
