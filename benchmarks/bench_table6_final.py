"""EXP T6 — Table VI: the final optimized kernel with ``__byte_perm``.

On CC 3.0 the three 16-bit rotations surviving the early exit (steps 34, 38
and 42) lower to single PRMT instructions; everything else matches Table V.
"""

from repro.analysis.tables import compare_rows, render_comparison, max_abs_delta
from repro.kernels.variants import (
    HashAlgorithm,
    KernelVariant,
    PAPER_TABLE_VI,
    traced_mixes,
)


def reproduce_table6() -> dict:
    mixes = traced_mixes(HashAlgorithm.MD5, KernelVariant.BYTE_PERM)
    return {family: mixes[family].as_table_row() for family in ("1.x", "2.x", "3.0")}


def test_table6_final_counts(benchmark):
    ours = benchmark(reproduce_table6)
    paper_30 = PAPER_TABLE_VI["3.0"].as_table_row()
    comparisons = compare_rows(
        {k: v for k, v in paper_30.items() if k != "SHF (funnel shift)"}, ours["3.0"]
    )
    print()
    print(render_comparison("Table VI (3.0) - final optimized kernel", comparisons))
    # The headline cells of the paper's optimization story, exactly:
    assert ours["3.0"]["SHR/SHL"] == 43
    assert ours["3.0"]["IMAD/ISCADD"] == 43
    assert ours["3.0"]["PRMT (byte_perm)"] == 3
    assert max_abs_delta(comparisons) < 6.0


def test_table6_shift_port_balance(benchmark):
    # Section V-B: "shifts and additions contribute equally to the
    # bottleneck, since 43 + 43 + 3 = 89 ~= 270/3".
    mix = benchmark(
        lambda: traced_mixes(HashAlgorithm.MD5, KernelVariant.BYTE_PERM)["3.0"]
    )
    shm = mix.shift_mad
    addlop = mix.add_lop
    print(f"\nN_SHM = {shm}, N_ADD+N_LOP = {addlop}, ratio = {addlop / shm:.2f}")
    assert shm == 89
    assert abs(addlop / 3 - shm) / shm < 0.05
