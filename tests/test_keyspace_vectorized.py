"""Tests for the vectorized batch generator against the scalar reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.keyspace import (
    ALNUM_MIXED,
    Charset,
    Interval,
    KeyMapping,
    KeyOrder,
    batch_digits,
    batch_keys,
    iter_batches,
)
from repro.keyspace.vectorized import decode_keys

ABC = Charset("abc", name="abc")


def scalar_keys(mapping: KeyMapping, start: int, count: int) -> list[str]:
    return [mapping.key_at(start + i) for i in range(count)]


class TestBatchKeys:
    @given(
        order=st.sampled_from(list(KeyOrder)),
        start=st.integers(0, 100),
        count=st.integers(0, 120),
    )
    @settings(max_examples=40)
    def test_matches_scalar_reference(self, order, start, count):
        mapping = KeyMapping(ABC, min_length=0, max_length=6, order=order)
        segments = batch_keys(mapping, start, count)
        decoded = [k for _, _, chars in segments for k in decode_keys(chars)]
        assert decoded == scalar_keys(mapping, start, count)

    def test_segments_split_at_stratum_boundaries(self):
        mapping = KeyMapping(ABC, min_length=1, max_length=3)
        # ids 0..2 are length 1, 3..11 length 2, 12.. length 3
        segments = batch_keys(mapping, 1, 15)
        spans = [(seg_start, length, chars.shape[0]) for seg_start, length, chars in segments]
        assert spans == [(1, 1, 2), (3, 2, 9), (12, 3, 4)]

    def test_fixed_length_single_segment(self):
        mapping = KeyMapping(ALNUM_MIXED, 4, 4)
        segments = batch_keys(mapping, 100, 50)
        assert len(segments) == 1
        _, length, chars = segments[0]
        assert length == 4
        assert chars.shape == (50, 4)
        assert chars.dtype == np.uint8

    def test_out_of_range_rejected(self):
        mapping = KeyMapping(ABC, 1, 2)
        with pytest.raises(IndexError):
            batch_keys(mapping, 0, mapping.size + 1)
        with pytest.raises(ValueError):
            batch_keys(mapping, 0, -1)

    def test_empty_count(self):
        mapping = KeyMapping(ABC, 1, 2)
        assert batch_keys(mapping, 3, 0) == []

    def test_length_zero_stratum(self):
        mapping = KeyMapping(ABC, 0, 1)
        segments = batch_keys(mapping, 0, 2)
        assert segments[0][1] == 0
        assert segments[0][2].shape == (1, 0)

    def test_big_int_fallback_matches_scalar(self):
        # length 12 over 62 symbols: stratum size 62**12 > 2**63 -> slow path.
        mapping = KeyMapping(ALNUM_MIXED, 12, 12)
        start = 62**11 + 987654321  # somewhere deep inside the stratum
        segments = batch_keys(mapping, start, 8)
        decoded = [k for _, _, chars in segments for k in decode_keys(chars)]
        assert decoded == scalar_keys(mapping, start, 8)

    def test_unary_charset(self):
        mapping = KeyMapping(Charset("x"), 1, 5)
        segments = batch_keys(mapping, 0, 5)
        decoded = [k for _, _, chars in segments for k in decode_keys(chars)]
        assert decoded == ["x", "xx", "xxx", "xxxx", "xxxxx"]


class TestBatchDigits:
    @given(order=st.sampled_from(list(KeyOrder)), start=st.integers(0, 50))
    @settings(max_examples=20)
    def test_digits_are_charset_values(self, order, start):
        mapping = KeyMapping(ABC, 0, 5, order)
        for _, _, digits in batch_digits(mapping, start, 30):
            if digits.size:
                assert digits.min() >= 0
                assert digits.max() < len(ABC)


class TestIterBatches:
    def test_covers_interval_exactly(self):
        mapping = KeyMapping(ABC, 1, 4)
        interval = Interval(2, 100)
        seen: list[str] = []
        for _, _, chars in iter_batches(mapping, interval, batch_size=7):
            seen.extend(decode_keys(chars))
        assert seen == scalar_keys(mapping, 2, 98)

    def test_batches_respect_max_size(self):
        mapping = KeyMapping(ALNUM_MIXED, 3, 3)
        for _, _, chars in iter_batches(mapping, Interval(0, 1000), batch_size=64):
            assert chars.shape[0] <= 64

    def test_invalid_batch_size(self):
        mapping = KeyMapping(ABC, 1, 2)
        with pytest.raises(ValueError):
            list(iter_batches(mapping, Interval(0, 5), 0))


class TestDecodeKeys:
    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            decode_keys(np.zeros(5, dtype=np.uint8))
