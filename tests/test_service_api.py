"""Gateway tests: concurrency, long-poll lifecycle, quotas, and auth fuzz.

Everything here drives a real :class:`ApiServer` over real sockets (via
:class:`ApiServerThread` + :class:`GatewayClient`), store-only mode — the
daemon-embedded path is exercised end-to-end by CI's api-smoke job.
"""

import hashlib
import json
import random
import socket
import threading

import pytest

from repro.service import (
    ApiClientError,
    ApiKeyring,
    ApiServer,
    ApiServerThread,
    GatewayClient,
    JobStore,
    TenantConfig,
    TenantRegistry,
    load_tenants,
)
from repro.service.jobstore import JobSpec

KEYS = {"k-acme": "acme", "k-zeta": "zeta", "k-tiny": "tiny", "k-slow": "slow"}
TENANTS = [
    TenantConfig("acme", weight=3, max_queued=32),
    TenantConfig("zeta", weight=1, max_queued=32),
    TenantConfig("tiny", weight=1, max_queued=2),
    TenantConfig("slow", weight=1, max_queued=32, rate=0.001, burst=3.0),
]


def spec(password=b"dog"):
    return JobSpec(
        digest=hashlib.md5(password).digest(), charset="abcdefgo", max_length=3
    ).to_dict()


@pytest.fixture()
def gateway(tmp_path):
    store = JobStore(tmp_path / "store")
    server = ApiServer(
        store, ApiKeyring(KEYS), TenantRegistry(TENANTS), poll_interval=0.01
    )
    thread = ApiServerThread(server)
    host, port = thread.start()
    try:
        yield f"http://{host}:{port}", store, server
    finally:
        thread.stop()


def client_for(url, key):
    return GatewayClient(url, key, timeout=10.0)


class TestConcurrentSubmitters:
    def test_parallel_submits_get_unique_namespaced_ids(self, gateway):
        url, store, _ = gateway
        results, errors = [], []

        def submit(i):
            # GatewayClient is not thread-safe: one per thread.
            try:
                with client_for(url, "k-acme") as client:
                    results.append(client.submit(spec(), priority=1))
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        ids = [doc["job"] for doc in results]
        assert len(set(ids)) == 8  # the submit lock serializes id allocation
        assert all(job.startswith("acme--") for job in ids)
        assert len(store.jobs()) == 8

    def test_quota_never_overshoots_under_concurrency(self, gateway):
        url, store, _ = gateway
        statuses = []

        def submit(i):
            try:
                with client_for(url, "k-tiny") as client:
                    client.submit(spec(bytes([i])))
                    statuses.append(201)
            except ApiClientError as exc:
                statuses.append(exc.status)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # max_queued=2: exactly two admitted, the rest rejected with 429.
        assert sorted(statuses) == [201, 201, 429, 429, 429, 429]
        assert len(store.jobs()) == 2


class TestLongPollLifecycle:
    def test_stream_sees_pause_resume_cancel_mid_poll(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            job = client.submit(spec(), job="watched")["job"]
            # Drain the submission-time lines first so the next poll blocks.
            drained = client.events(job, cursor=0, timeout=0.0)
            assert any("submitted" in line for line in drained["events"])
            cursor = drained["cursor"]

        holder = {}

        def poll():
            with client_for(url, "k-acme") as poller:
                holder["delta"] = poller.events(job, cursor=cursor, timeout=10.0)

        waiter = threading.Thread(target=poll)
        waiter.start()
        with client_for(url, "k-acme") as control:
            assert control.control(job, "pause")["state"] == "paused"
        waiter.join(timeout=10.0)
        assert not waiter.is_alive()
        delta = holder["delta"]
        assert delta["state"] == "paused" and not delta["complete"]
        assert any("pause" in line for line in delta["events"])

        with client_for(url, "k-acme") as control:
            assert control.control(job, "resume")["state"] == "queued"
            # Cancel terminates the stream: the next poll returns complete.
            assert control.control(job, "cancel")["state"] == "cancelled"
            final = control.events(job, cursor=delta["cursor"], timeout=10.0)
        assert final["complete"] and final["state"] == "cancelled"

    def test_poll_on_terminal_job_returns_immediately(self, gateway):
        url, store, _ = gateway
        with client_for(url, "k-acme") as client:
            job = client.submit(spec(), job="dead")["job"]
            client.control(job, "cancel")
            doc = client.events(job, cursor=0, timeout=30.0)  # must not block
        assert doc["complete"] and doc["state"] == "cancelled"

    def test_illegal_transitions_are_409(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            job = client.submit(spec(), job="locked")["job"]
            with pytest.raises(ApiClientError) as err:
                client.control(job, "resume")  # queued -> resume is nonsense
            assert err.value.status == 409
            client.control(job, "cancel")
            with pytest.raises(ApiClientError) as err:
                client.control(job, "pause")  # cancelled -> pause
            assert err.value.status == 409


class TestQuotaIsolation:
    def test_rejected_tenant_does_not_perturb_anothers_running_job(self, gateway):
        url, store, _ = gateway
        with client_for(url, "k-acme") as acme:
            running = acme.submit(spec(), job="crunching")["job"]
        store.set_state(running, "running", "picked up")
        before = store.load(running)

        with client_for(url, "k-tiny") as tiny:
            tiny.submit(spec(b"a"))
            tiny.submit(spec(b"b"))
            with pytest.raises(ApiClientError) as err:
                tiny.submit(spec(b"c"))
        assert err.value.status == 429
        assert "max_queued" in err.value.message

        # The acceptance bar: acme's running job is byte-for-byte untouched.
        after = store.load(running)
        assert after.state == "running"
        assert after.to_document() == before.to_document()
        with client_for(url, "k-acme") as acme:
            assert acme.status(running)["state"] == "running"

    def test_quota_endpoint_reports_admission_state(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-tiny") as tiny:
            tiny.submit(spec(b"a"))
            doc = tiny.quota("tiny")
        assert doc["active"] == 1 and doc["max_queued"] == 2
        assert doc["tokens"] <= doc["burst"]

    def test_quota_is_private_to_the_tenant(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as acme:
            with pytest.raises(ApiClientError) as err:
                acme.quota("tiny")
        assert err.value.status == 403

    def test_rate_limit_rejects_with_429(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-slow") as slow:  # burst=3, refill ~0
            statuses = []
            for _ in range(6):
                try:
                    slow.jobs()
                    statuses.append(200)
                except ApiClientError as exc:
                    statuses.append(exc.status)
        assert statuses == [200, 200, 200, 429, 429, 429]


class TestAuthFuzz:
    BAD_KEYS = ["", "K-ACME", "k-acm", "k-acme2", "k-acmee", "k--acme",
                "Bearer k-acme", "k-zeta k-acme", "x" * 4096]

    def test_garbage_keys_all_401(self, gateway):
        url, _, server = gateway
        for bad in self.BAD_KEYS:
            with client_for(url, bad) as client:
                with pytest.raises(ApiClientError) as err:
                    client.jobs()
            assert err.value.status == 401, bad

    def test_padded_key_is_equivalent_to_the_key_itself(self, gateway):
        # Header whitespace is insignificant: "Bearer  k-acme " is k-acme.
        url, _, _ = gateway
        with client_for(url, " k-acme ") as client:
            assert client.jobs()["kind"] == "job-list"

    def test_random_header_soup_never_crashes_the_gateway(self, gateway):
        url, _, _ = gateway
        rng = random.Random(0xBEEF)
        alphabet = "abcXYZ 0189:;,-_"
        for _ in range(30):
            name = "".join(rng.choice(alphabet) for _ in range(rng.randrange(1, 20)))
            value = "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 40)))
            status, _ = raw_http(url, headers={name.strip() or "x": value})
            assert status in (400, 401)
        with client_for(url, "k-acme") as client:  # still alive afterwards
            assert client.jobs()["kind"] == "job-list"

    def test_revoked_key_stops_working_immediately(self, gateway):
        url, _, server = gateway
        with client_for(url, "k-zeta") as client:
            client.jobs()
            assert server.keyring.revoke("k-zeta")
            with pytest.raises(ApiClientError) as err:
                client.jobs()  # a replayed captured key is now worthless
        assert err.value.status == 401

    def test_valid_key_of_unconfigured_tenant_is_401(self, tmp_path):
        store = JobStore(tmp_path / "store")
        keyring = ApiKeyring({"k-ghost": "ghost", "k-acme": "acme"})
        server = ApiServer(store, keyring, TenantRegistry([TenantConfig("acme")]))
        thread = ApiServerThread(server)
        host, port = thread.start()
        try:
            with client_for(f"http://{host}:{port}", "k-ghost") as client:
                with pytest.raises(ApiClientError) as err:
                    client.jobs()
            assert err.value.status == 401
        finally:
            thread.stop()

    def test_foreign_jobs_404_not_403(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as acme:
            job = acme.submit(spec(), job="secret")["job"]
        with client_for(url, "k-zeta") as zeta:
            for attempt in (
                lambda: zeta.status(job),
                lambda: zeta.control(job, "cancel"),
                lambda: zeta.events(job, timeout=0.0),
                lambda: zeta.metrics(job),
            ):
                with pytest.raises(ApiClientError) as err:
                    attempt()
                assert err.value.status == 404  # no existence oracle
            assert zeta.jobs()["jobs"] == []  # listing does not leak either


def raw_http(url, request_bytes=None, headers=None):
    """Speak raw HTTP/1.1 for the malformed-framing tests."""
    host, port = url[len("http://"):].split(":")
    with socket.create_connection((host, int(port)), timeout=10.0) as sock:
        if request_bytes is None:
            lines = ["GET /v1/jobs HTTP/1.1", f"Host: {host}"]
            for name, value in (headers or {}).items():
                lines.append(f"{name}: {value}")
            request_bytes = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        sock.sendall(request_bytes)
        sock.shutdown(socket.SHUT_WR)
        payload = b""
        while chunk := sock.recv(65536):
            payload += chunk
    if not payload:
        return None, b""
    head, _, body = payload.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body


class TestMalformedFraming:
    def test_garbage_request_line_is_400(self, gateway):
        url, _, _ = gateway
        status, body = raw_http(url, b"\x16\x03\x01 oops\r\n\r\n")
        assert status == 400
        assert json.loads(body)["kind"] == "error"

    def test_oversized_body_is_413(self, gateway):
        url, _, _ = gateway
        request = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Authorization: Bearer k-acme\r\n"
            b"Content-Length: 999999999\r\n\r\n"
        )
        status, _ = raw_http(url, request)
        assert status == 413

    def test_bad_json_body_is_400(self, gateway):
        url, _, _ = gateway
        body = b"{not json"
        request = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Authorization: Bearer k-acme\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        status, payload = raw_http(url, request)
        assert status == 400
        assert "JSON" in json.loads(payload)["error"]

    def test_wrong_kind_document_is_400(self, gateway):
        url, _, _ = gateway
        from repro.service.wire import control_request

        body = json.dumps(control_request("pause")).encode()
        request = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Authorization: Bearer k-acme\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        status, payload = raw_http(url, request)
        assert status == 400
        assert "submit" in json.loads(payload)["error"]

    def test_unknown_route_and_wrong_method(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            with pytest.raises(ApiClientError) as err:
                client._request("GET", "/v2/jobs")
            assert err.value.status == 404
            with pytest.raises(ApiClientError) as err:
                client._request("DELETE", "/v1/jobs")
            assert err.value.status == 405


class TestGatewayMetrics:
    def test_live_export_counts_requests_and_errors(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            client.submit(spec())
            with pytest.raises(ApiClientError):
                client.status("acme--ghost")
            doc = client.metrics()
        from repro.obs import validate_metrics

        payload = doc["metrics"]
        assert validate_metrics(payload) == []
        names = {c["name"] for c in payload["counters"]}
        assert "api.requests" in names and "api.errors" in names
        submitted = [e for e in payload["events"] if e["name"] == "api.submitted"]
        assert submitted and submitted[0]["fields"]["tenant"] == "acme"


class TestOverloadShedding:
    @pytest.fixture()
    def tiny_gateway(self, tmp_path):
        """One request slot, zero queue: the second request is shed."""
        store = JobStore(tmp_path / "store")
        server = ApiServer(
            store, ApiKeyring(KEYS), TenantRegistry(TENANTS),
            poll_interval=0.01, max_inflight=1, max_queue=0,
        )
        thread = ApiServerThread(server)
        host, port = thread.start()
        try:
            yield f"http://{host}:{port}", store, server
        finally:
            thread.stop()

    def test_shed_request_gets_429_with_retry_after(self, tiny_gateway):
        url, _, server = tiny_gateway
        with client_for(url, "k-acme") as client:
            job = client.submit(spec(), job="hog")["job"]

        started = threading.Event()
        done = threading.Event()

        def occupy():
            # Long-polls hold the single inflight slot.  The hog itself can
            # lose the slot race to a probe and get shed — retry until the
            # job goes terminal so the slot stays held almost continuously.
            with client_for(url, "k-acme") as poller:
                cursor = poller.events(job, cursor=0, timeout=0.0)["cursor"]
                started.set()
                while True:
                    try:
                        delta = poller.events(job, cursor=cursor, timeout=5.0)
                    except ApiClientError as exc:
                        if exc.status != 429:
                            raise
                        continue
                    cursor = delta["cursor"]
                    if delta["complete"]:
                        break
            done.set()

        hog = threading.Thread(target=occupy)
        hog.start()
        try:
            assert started.wait(timeout=10.0)
            shed = []
            # The slot is held; with max_queue=0 concurrent probes are shed.
            # A probe may still slip into the slot between two hog polls, so
            # tolerate interleaved 200s and require shed refusals, not purity.
            for _ in range(40):
                if done.is_set() or len(shed) >= 3:
                    break
                try:
                    with client_for(url, "k-acme") as client:
                        client.jobs()
                except ApiClientError as exc:
                    shed.append(exc)
            assert shed, "no request was shed while the slot was held"
            assert all(exc.status == 429 for exc in shed)
            assert all("overloaded" in exc.message for exc in shed)
            assert server.recorder.counter_value("shed.requests") >= len(shed)
        finally:
            # Unblock the hog's long-poll promptly (terminal => complete).
            server.store.set_state(job, "cancelled", "test over")
            hog.join(timeout=10.0)
        assert not hog.is_alive()

    def test_retry_after_header_is_emitted(self, tiny_gateway):
        url, _, server = tiny_gateway
        with client_for(url, "k-acme") as client:
            job = client.submit(spec(), job="hog2")["job"]
        started = threading.Event()

        def occupy():
            with client_for(url, "k-acme") as poller:
                cursor = poller.events(job, cursor=0, timeout=0.0)["cursor"]
                started.set()
                while True:
                    try:
                        delta = poller.events(job, cursor=cursor, timeout=5.0)
                    except ApiClientError as exc:
                        if exc.status != 429:  # shed: lost the slot race
                            raise
                        continue
                    cursor = delta["cursor"]
                    if delta["complete"]:
                        break

        hog = threading.Thread(target=occupy)
        hog.start()
        try:
            assert started.wait(timeout=10.0)
            headers = {}
            for _ in range(20):
                status, body, headers = raw_http_with_headers(
                    url, headers={"Authorization": "Bearer k-acme"}
                )
                if status == 429:
                    break
            else:
                pytest.fail("never observed a shed request")
            assert "retry-after" in headers
            assert int(headers["retry-after"]) >= 1
            assert json.loads(body)["retry_after"] >= 0
        finally:
            server.store.set_state(job, "cancelled", "test over")
            hog.join(timeout=10.0)

    def test_rate_limited_429_carries_retry_after(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-slow") as slow:  # burst=3, refill 0.001/s
            for _ in range(3):
                slow.jobs()
        for _ in range(3):
            status, body, headers = raw_http_with_headers(
                url, headers={"Authorization": "Bearer k-slow"}
            )
            if status == 429:
                break
        else:
            pytest.fail("rate limit never tripped")
        assert "retry-after" in headers
        assert json.loads(body)["retry_after"] > 0


class TestIdempotency:
    def test_replayed_submit_returns_the_original_job(self, gateway):
        url, store, server = gateway
        key = "retry-abc123"
        with client_for(url, "k-acme") as client:
            first = client.submit(spec(), job="only-one", idempotency_key=key)
            replay = client.submit(spec(), job="only-one", idempotency_key=key)
        assert first == replay  # byte-identical document, not a 409
        assert len(store.jobs()) == 1
        assert server.recorder.counter_total("api.idempotent_replays") == 1

    def test_different_keys_are_different_submissions(self, gateway):
        url, store, _ = gateway
        with client_for(url, "k-acme") as client:
            a = client.submit(spec(b"a"), idempotency_key="key-a")
            b = client.submit(spec(b"b"), idempotency_key="key-b")
        assert a["job"] != b["job"]
        assert len(store.jobs()) == 2

    def test_idempotency_keys_are_tenant_scoped(self, gateway):
        url, store, _ = gateway
        with client_for(url, "k-acme") as acme:
            first = acme.submit(spec(), idempotency_key="shared-key")
        with client_for(url, "k-zeta") as zeta:
            second = zeta.submit(spec(), idempotency_key="shared-key")
        # Same key, different tenants: two distinct jobs, no cache leak.
        assert first["job"].startswith("acme--")
        assert second["job"].startswith("zeta--")
        assert len(store.jobs()) == 2

    def test_oversized_or_garbage_key_is_400(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            with pytest.raises(ApiClientError) as err:
                client._request(
                    "POST", "/v1/jobs",
                    {"schema": "repro-api/v1", "kind": "submit",
                     "spec": spec(), "priority": 1},
                    idempotency_key="x" * 500,
                )
            assert err.value.status == 400
            with pytest.raises(ApiClientError) as err:
                client._request(
                    "POST", "/v1/jobs",
                    {"schema": "repro-api/v1", "kind": "submit",
                     "spec": spec(), "priority": 1},
                    idempotency_key="bad\x01key",
                )
            assert err.value.status == 400

    def test_client_generates_a_key_per_submit(self, gateway):
        # Auto-generated keys must differ call to call, or two intentional
        # submissions of the same spec would silently collapse into one.
        url, store, _ = gateway
        with client_for(url, "k-acme") as client:
            client.submit(spec())
            client.submit(spec())
        assert len(store.jobs()) == 2


class TestRequestDeadline:
    def test_deadline_header_clamps_the_long_poll(self, gateway):
        import time as _time

        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            job = client.submit(spec(), job="patient")["job"]
            cursor = client.events(job, cursor=0, timeout=0.0)["cursor"]
            started = _time.monotonic()
            # Query asks for 30s of long-poll; the header says the caller
            # only waits 0.2s.  The server honors the smaller budget.
            document = client._request(
                "GET",
                f"/v1/jobs/{job}/events?cursor={cursor}&timeout=30",
                request_timeout=0.2,
            )
            elapsed = _time.monotonic() - started
        assert document["events"] == []
        assert elapsed < 5.0

    def test_bad_deadline_header_is_400(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            job = client.submit(spec(), job="strict")["job"]
        status, body, _ = raw_http_with_headers(
            url,
            path=f"/v1/jobs/{job}/events?cursor=0&timeout=0",
            headers={
                "Authorization": "Bearer k-acme",
                "X-Request-Timeout": "soonish",
            },
        )
        assert status == 400
        assert "X-Request-Timeout" in json.loads(body)["error"]

    def test_negative_cursor_is_400_on_both_transports(self, gateway, tmp_path):
        from repro.service import LocalClient

        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            job = client.submit(spec(), job="cursor")["job"]
            with pytest.raises(ApiClientError) as err:
                client.events(job, cursor=-1, timeout=0.0)
            assert err.value.status == 400

        local_store = JobStore(tmp_path / "local")
        local = LocalClient(local_store)
        local_job = local.submit(spec(), job="cursor")["job"]
        with pytest.raises(ApiClientError) as err:
            local.events(local_job, cursor=-1)
        assert err.value.status == 400  # exact parity with the gateway


def raw_http_with_headers(url, path="/v1/jobs", headers=None):
    """Like :func:`raw_http` but returns the response headers too."""
    host, port = url[len("http://"):].split(":")
    with socket.create_connection((host, int(port)), timeout=10.0) as sock:
        lines = [f"GET {path} HTTP/1.1", f"Host: {host}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        sock.sendall(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        sock.shutdown(socket.SHUT_WR)
        payload = b""
        while chunk := sock.recv(65536):
            payload += chunk
    head, _, body = payload.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    parsed = {}
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        parsed[name.decode("latin-1").strip().lower()] = (
            value.decode("latin-1").strip()
        )
    return status, body, parsed


class TestLoadTenants:
    def document(self):
        return {
            "schema": "repro-api-keys/v1",
            "tenants": {
                "acme": {"weight": 3, "keys": ["k-1", "k-2"]},
                "zeta": {"max_queued": 4, "rate": 5, "burst": 10, "keys": ["k-3"]},
            },
        }

    def test_round_trip(self, tmp_path):
        path = tmp_path / "keys.json"
        path.write_text(json.dumps(self.document()))
        keyring, tenants = load_tenants(path)
        assert keyring.authenticate("k-2") == "acme"
        assert tenants.get("zeta").max_queued == 4
        assert tenants.effective_priority("acme", 2) == 6

    def test_duplicate_key_rejected(self, tmp_path):
        document = self.document()
        document["tenants"]["zeta"]["keys"] = ["k-1"]
        path = tmp_path / "keys.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="assigned twice"):
            load_tenants(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "keys.json"
        path.write_text(json.dumps({"schema": "nope", "tenants": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_tenants(path)
