"""Gateway tests: concurrency, long-poll lifecycle, quotas, and auth fuzz.

Everything here drives a real :class:`ApiServer` over real sockets (via
:class:`ApiServerThread` + :class:`GatewayClient`), store-only mode — the
daemon-embedded path is exercised end-to-end by CI's api-smoke job.
"""

import hashlib
import json
import random
import socket
import threading

import pytest

from repro.service import (
    ApiClientError,
    ApiKeyring,
    ApiServer,
    ApiServerThread,
    GatewayClient,
    JobStore,
    TenantConfig,
    TenantRegistry,
    load_tenants,
)
from repro.service.jobstore import JobSpec

KEYS = {"k-acme": "acme", "k-zeta": "zeta", "k-tiny": "tiny", "k-slow": "slow"}
TENANTS = [
    TenantConfig("acme", weight=3, max_queued=32),
    TenantConfig("zeta", weight=1, max_queued=32),
    TenantConfig("tiny", weight=1, max_queued=2),
    TenantConfig("slow", weight=1, max_queued=32, rate=0.001, burst=3.0),
]


def spec(password=b"dog"):
    return JobSpec(
        digest=hashlib.md5(password).digest(), charset="abcdefgo", max_length=3
    ).to_dict()


@pytest.fixture()
def gateway(tmp_path):
    store = JobStore(tmp_path / "store")
    server = ApiServer(
        store, ApiKeyring(KEYS), TenantRegistry(TENANTS), poll_interval=0.01
    )
    thread = ApiServerThread(server)
    host, port = thread.start()
    try:
        yield f"http://{host}:{port}", store, server
    finally:
        thread.stop()


def client_for(url, key):
    return GatewayClient(url, key, timeout=10.0)


class TestConcurrentSubmitters:
    def test_parallel_submits_get_unique_namespaced_ids(self, gateway):
        url, store, _ = gateway
        results, errors = [], []

        def submit(i):
            # GatewayClient is not thread-safe: one per thread.
            try:
                with client_for(url, "k-acme") as client:
                    results.append(client.submit(spec(), priority=1))
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        ids = [doc["job"] for doc in results]
        assert len(set(ids)) == 8  # the submit lock serializes id allocation
        assert all(job.startswith("acme--") for job in ids)
        assert len(store.jobs()) == 8

    def test_quota_never_overshoots_under_concurrency(self, gateway):
        url, store, _ = gateway
        statuses = []

        def submit(i):
            try:
                with client_for(url, "k-tiny") as client:
                    client.submit(spec(bytes([i])))
                    statuses.append(201)
            except ApiClientError as exc:
                statuses.append(exc.status)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # max_queued=2: exactly two admitted, the rest rejected with 429.
        assert sorted(statuses) == [201, 201, 429, 429, 429, 429]
        assert len(store.jobs()) == 2


class TestLongPollLifecycle:
    def test_stream_sees_pause_resume_cancel_mid_poll(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            job = client.submit(spec(), job="watched")["job"]
            # Drain the submission-time lines first so the next poll blocks.
            drained = client.events(job, cursor=0, timeout=0.0)
            assert any("submitted" in line for line in drained["events"])
            cursor = drained["cursor"]

        holder = {}

        def poll():
            with client_for(url, "k-acme") as poller:
                holder["delta"] = poller.events(job, cursor=cursor, timeout=10.0)

        waiter = threading.Thread(target=poll)
        waiter.start()
        with client_for(url, "k-acme") as control:
            assert control.control(job, "pause")["state"] == "paused"
        waiter.join(timeout=10.0)
        assert not waiter.is_alive()
        delta = holder["delta"]
        assert delta["state"] == "paused" and not delta["complete"]
        assert any("pause" in line for line in delta["events"])

        with client_for(url, "k-acme") as control:
            assert control.control(job, "resume")["state"] == "queued"
            # Cancel terminates the stream: the next poll returns complete.
            assert control.control(job, "cancel")["state"] == "cancelled"
            final = control.events(job, cursor=delta["cursor"], timeout=10.0)
        assert final["complete"] and final["state"] == "cancelled"

    def test_poll_on_terminal_job_returns_immediately(self, gateway):
        url, store, _ = gateway
        with client_for(url, "k-acme") as client:
            job = client.submit(spec(), job="dead")["job"]
            client.control(job, "cancel")
            doc = client.events(job, cursor=0, timeout=30.0)  # must not block
        assert doc["complete"] and doc["state"] == "cancelled"

    def test_illegal_transitions_are_409(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            job = client.submit(spec(), job="locked")["job"]
            with pytest.raises(ApiClientError) as err:
                client.control(job, "resume")  # queued -> resume is nonsense
            assert err.value.status == 409
            client.control(job, "cancel")
            with pytest.raises(ApiClientError) as err:
                client.control(job, "pause")  # cancelled -> pause
            assert err.value.status == 409


class TestQuotaIsolation:
    def test_rejected_tenant_does_not_perturb_anothers_running_job(self, gateway):
        url, store, _ = gateway
        with client_for(url, "k-acme") as acme:
            running = acme.submit(spec(), job="crunching")["job"]
        store.set_state(running, "running", "picked up")
        before = store.load(running)

        with client_for(url, "k-tiny") as tiny:
            tiny.submit(spec(b"a"))
            tiny.submit(spec(b"b"))
            with pytest.raises(ApiClientError) as err:
                tiny.submit(spec(b"c"))
        assert err.value.status == 429
        assert "max_queued" in err.value.message

        # The acceptance bar: acme's running job is byte-for-byte untouched.
        after = store.load(running)
        assert after.state == "running"
        assert after.to_document() == before.to_document()
        with client_for(url, "k-acme") as acme:
            assert acme.status(running)["state"] == "running"

    def test_quota_endpoint_reports_admission_state(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-tiny") as tiny:
            tiny.submit(spec(b"a"))
            doc = tiny.quota("tiny")
        assert doc["active"] == 1 and doc["max_queued"] == 2
        assert doc["tokens"] <= doc["burst"]

    def test_quota_is_private_to_the_tenant(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as acme:
            with pytest.raises(ApiClientError) as err:
                acme.quota("tiny")
        assert err.value.status == 403

    def test_rate_limit_rejects_with_429(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-slow") as slow:  # burst=3, refill ~0
            statuses = []
            for _ in range(6):
                try:
                    slow.jobs()
                    statuses.append(200)
                except ApiClientError as exc:
                    statuses.append(exc.status)
        assert statuses == [200, 200, 200, 429, 429, 429]


class TestAuthFuzz:
    BAD_KEYS = ["", "K-ACME", "k-acm", "k-acme2", "k-acmee", "k--acme",
                "Bearer k-acme", "k-zeta k-acme", "x" * 4096]

    def test_garbage_keys_all_401(self, gateway):
        url, _, server = gateway
        for bad in self.BAD_KEYS:
            with client_for(url, bad) as client:
                with pytest.raises(ApiClientError) as err:
                    client.jobs()
            assert err.value.status == 401, bad

    def test_padded_key_is_equivalent_to_the_key_itself(self, gateway):
        # Header whitespace is insignificant: "Bearer  k-acme " is k-acme.
        url, _, _ = gateway
        with client_for(url, " k-acme ") as client:
            assert client.jobs()["kind"] == "job-list"

    def test_random_header_soup_never_crashes_the_gateway(self, gateway):
        url, _, _ = gateway
        rng = random.Random(0xBEEF)
        alphabet = "abcXYZ 0189:;,-_"
        for _ in range(30):
            name = "".join(rng.choice(alphabet) for _ in range(rng.randrange(1, 20)))
            value = "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 40)))
            status, _ = raw_http(url, headers={name.strip() or "x": value})
            assert status in (400, 401)
        with client_for(url, "k-acme") as client:  # still alive afterwards
            assert client.jobs()["kind"] == "job-list"

    def test_revoked_key_stops_working_immediately(self, gateway):
        url, _, server = gateway
        with client_for(url, "k-zeta") as client:
            client.jobs()
            assert server.keyring.revoke("k-zeta")
            with pytest.raises(ApiClientError) as err:
                client.jobs()  # a replayed captured key is now worthless
        assert err.value.status == 401

    def test_valid_key_of_unconfigured_tenant_is_401(self, tmp_path):
        store = JobStore(tmp_path / "store")
        keyring = ApiKeyring({"k-ghost": "ghost", "k-acme": "acme"})
        server = ApiServer(store, keyring, TenantRegistry([TenantConfig("acme")]))
        thread = ApiServerThread(server)
        host, port = thread.start()
        try:
            with client_for(f"http://{host}:{port}", "k-ghost") as client:
                with pytest.raises(ApiClientError) as err:
                    client.jobs()
            assert err.value.status == 401
        finally:
            thread.stop()

    def test_foreign_jobs_404_not_403(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as acme:
            job = acme.submit(spec(), job="secret")["job"]
        with client_for(url, "k-zeta") as zeta:
            for attempt in (
                lambda: zeta.status(job),
                lambda: zeta.control(job, "cancel"),
                lambda: zeta.events(job, timeout=0.0),
                lambda: zeta.metrics(job),
            ):
                with pytest.raises(ApiClientError) as err:
                    attempt()
                assert err.value.status == 404  # no existence oracle
            assert zeta.jobs()["jobs"] == []  # listing does not leak either


def raw_http(url, request_bytes=None, headers=None):
    """Speak raw HTTP/1.1 for the malformed-framing tests."""
    host, port = url[len("http://"):].split(":")
    with socket.create_connection((host, int(port)), timeout=10.0) as sock:
        if request_bytes is None:
            lines = ["GET /v1/jobs HTTP/1.1", f"Host: {host}"]
            for name, value in (headers or {}).items():
                lines.append(f"{name}: {value}")
            request_bytes = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        sock.sendall(request_bytes)
        sock.shutdown(socket.SHUT_WR)
        payload = b""
        while chunk := sock.recv(65536):
            payload += chunk
    if not payload:
        return None, b""
    head, _, body = payload.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body


class TestMalformedFraming:
    def test_garbage_request_line_is_400(self, gateway):
        url, _, _ = gateway
        status, body = raw_http(url, b"\x16\x03\x01 oops\r\n\r\n")
        assert status == 400
        assert json.loads(body)["kind"] == "error"

    def test_oversized_body_is_413(self, gateway):
        url, _, _ = gateway
        request = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Authorization: Bearer k-acme\r\n"
            b"Content-Length: 999999999\r\n\r\n"
        )
        status, _ = raw_http(url, request)
        assert status == 413

    def test_bad_json_body_is_400(self, gateway):
        url, _, _ = gateway
        body = b"{not json"
        request = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Authorization: Bearer k-acme\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        status, payload = raw_http(url, request)
        assert status == 400
        assert "JSON" in json.loads(payload)["error"]

    def test_wrong_kind_document_is_400(self, gateway):
        url, _, _ = gateway
        from repro.service.wire import control_request

        body = json.dumps(control_request("pause")).encode()
        request = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Authorization: Bearer k-acme\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        status, payload = raw_http(url, request)
        assert status == 400
        assert "submit" in json.loads(payload)["error"]

    def test_unknown_route_and_wrong_method(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            with pytest.raises(ApiClientError) as err:
                client._request("GET", "/v2/jobs")
            assert err.value.status == 404
            with pytest.raises(ApiClientError) as err:
                client._request("DELETE", "/v1/jobs")
            assert err.value.status == 405


class TestGatewayMetrics:
    def test_live_export_counts_requests_and_errors(self, gateway):
        url, _, _ = gateway
        with client_for(url, "k-acme") as client:
            client.submit(spec())
            with pytest.raises(ApiClientError):
                client.status("acme--ghost")
            doc = client.metrics()
        from repro.obs import validate_metrics

        payload = doc["metrics"]
        assert validate_metrics(payload) == []
        names = {c["name"] for c in payload["counters"]}
        assert "api.requests" in names and "api.errors" in names
        submitted = [e for e in payload["events"] if e["name"] == "api.submitted"]
        assert submitted and submitted[0]["fields"]["tenant"] == "acme"


class TestLoadTenants:
    def document(self):
        return {
            "schema": "repro-api-keys/v1",
            "tenants": {
                "acme": {"weight": 3, "keys": ["k-1", "k-2"]},
                "zeta": {"max_queued": 4, "rate": 5, "burst": 10, "keys": ["k-3"]},
            },
        }

    def test_round_trip(self, tmp_path):
        path = tmp_path / "keys.json"
        path.write_text(json.dumps(self.document()))
        keyring, tenants = load_tenants(path)
        assert keyring.authenticate("k-2") == "acme"
        assert tenants.get("zeta").max_queued == 4
        assert tenants.effective_priority("acme", 2) == 6

    def test_duplicate_key_rejected(self, tmp_path):
        document = self.document()
        document["tenants"]["zeta"]["keys"] = ["k-1"]
        path = tmp_path / "keys.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="assigned twice"):
            load_tenants(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "keys.json"
        path.write_text(json.dumps({"schema": "nope", "tenants": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_tenants(path)
