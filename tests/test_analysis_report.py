"""Tests for the programmatic paper-vs-measured report."""

import pytest

from repro.analysis.report import (
    generate_report,
    kernel_tables_section,
    table3_section,
    table8_section,
    table9_section,
)


class TestSections:
    def test_table3_exact_structural_rows(self):
        text, worst = table3_section()
        assert "32-bit integer shift" in text
        assert "+0.0%" in text  # shifts and logicals match exactly

    def test_kernel_tables_worst_delta_bounded(self):
        text, worst = kernel_tables_section()
        assert "Table VI (3.0)" in text
        assert worst < 10.0

    def test_table8_worst_delta_bounded(self):
        text, worst = table8_section()
        assert "MD5 (our approach)" in text
        assert "SHA1 (Cryptohaze)" in text
        assert "BarsWF" in text
        assert worst < 20.0

    def test_table9_md5_tight(self):
        text, worst = table9_section(work=10**10)
        assert "Table IX - MD5" in text
        assert "Table IX - SHA1" in text


class TestFullReport:
    def test_contains_every_table(self):
        report = generate_report()
        for marker in (
            "Table III",
            "Table IV (1.x)",
            "Table V (2.x)",
            "Table VI (3.0)",
            "Table VIII - MD5 (theoretical)",
            "Table IX - SHA1",
            "worst |delta|",
        ):
            assert marker in report, marker

    def test_headline_numbers_present(self):
        report = generate_report()
        # The reproduced Kepler theoretical and the network efficiency.
        assert "1857" in report
        assert "0.84" in report or "0.85" in report
