"""Cross-layer chaos: storage faults + crashes never corrupt a result.

The tentpole property from the issue, stated as invariants a storm can
never break:

* the cracked key never changes — a job that completes reports exactly
  the password its digest encodes;
* no candidate is ever billed twice — every surviving checkpoint's
  interval ledger stays non-overlapping (the at-most-once *marking*
  guarantee under at-least-once *testing*);
* no accepted submission is ever lost — every submit that returned
  success is a ``done`` job at the end, however many crashes, torn
  writes, and fsck repairs happened in between.

The storm loop models the real ops flow: the service crashes on an
injected fault, ``repro fsck --repair`` makes the store consistent, a
fresh scheduler resumes.  Faults are seeded, so a failure reproduces.
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.core.progress import ProgressLog
from repro.service import FaultConfig, FaultInjector, JobSpec, JobStore, fsck_store
from repro.service.scheduler import Scheduler

PASSWORDS = ["ab", "ca", "bbc", "c"]


def spec_for(password):
    return JobSpec(
        digest=hashlib.md5(password.encode()).digest(),
        charset="abc",
        min_length=1,
        max_length=3,
        chunk_size=8,
        batch_size=8,
    )


class TestStormProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        rate=st.sampled_from([0.02, 0.05, 0.10]),
    )
    def test_faults_never_change_results_or_lose_jobs(self, tmp_path_factory, seed, rate):
        root = tmp_path_factory.mktemp("storm")
        injector = FaultInjector(
            FaultConfig(
                torn=rate, enospc=rate / 2, eio=rate / 2, fsync_lie=rate, seed=seed
            )
        )
        store = JobStore(root, faults=injector)

        # -- submissions under fire: only a returned submit is "accepted" --- #
        accepted = {}
        for i, password in enumerate(PASSWORDS):
            for attempt in range(25):
                job_id = f"job-{i}-{attempt}"
                try:
                    record = store.submit(spec_for(password), job_id=job_id)
                except OSError:
                    # The client saw a failure; the job may half-exist.
                    # fsck makes the store consistent before the retry.
                    fsck_store(root, repair=True)
                    continue
                accepted[record.id] = password
                break
            else:
                pytest.fail(f"submission of {password!r} never got through")

        # -- the crash/repair/resume loop ----------------------------------- #
        crashes = 0
        for restart in range(80):
            scheduler = Scheduler(store, checkpoint_every=1)
            try:
                scheduler.run_until_idle(max_rounds=500)
            except (OSError, ValueError):
                # An injected fault escaped the scheduler's slice guard
                # (e.g. a torn job.json broke the store scan): that is the
                # process crash.  fsck repairs, a fresh scheduler resumes.
                crashes += 1
            finally:
                scheduler.close()
            fsck_store(root, repair=True)
            clean = JobStore(root)  # fault-free view for the convergence check
            # A job that failed on a corrupt checkpoint is resumable now
            # that fsck restored a consistent one — the operator flow.
            for record in clean.jobs():
                if record.state == "failed":
                    clean.set_state(record.id, "queued", "resumed after fsck")
            if all(
                record.state not in ("queued", "running")
                for record in clean.jobs()
            ):
                break
        else:
            pytest.fail(f"storm never converged (crashes={crashes}, seed={seed})")

        # -- the invariants --------------------------------------------------#
        clean = JobStore(root)
        final = {record.id: record for record in clean.jobs()}
        for job_id, password in accepted.items():
            assert job_id in final, f"accepted job {job_id} was lost"
            assert final[job_id].state == "done", (job_id, final[job_id].state)
            log = clean.load_progress(job_id)
            assert log.check_invariant()  # no candidate billed twice
            keys = [key for _, key in log.found]
            assert keys == [password], f"{job_id}: cracked {keys}, not {password!r}"

        # -- and the store itself ends consistent --------------------------- #
        fsck_store(root, repair=True)
        assert fsck_store(root)["clean"] is True


class TestTornCheckpointResume:
    """Satellite: a crash mid-checkpoint-write recovers the last consistent
    generation with an exact tested count."""

    def test_torn_write_rolls_back_to_previous_generation(self, tmp_path):
        password = "cab"
        store = JobStore(tmp_path, faults=None)
        store.submit(spec_for(password), job_id="victim")

        # Two real generations, then a torn third: the classic power-cut.
        log = store.load_progress("victim")
        from repro.keyspace import Interval

        log.mark_done(Interval(0, 8))
        store.save_progress("victim", log)
        log.mark_done(Interval(8, 16))
        store.save_progress("victim", log)

        torn = JobStore(tmp_path, faults=FaultInjector(FaultConfig(torn=1.0)))
        log.mark_done(Interval(16, 24))
        with pytest.raises(OSError):
            torn.save_progress("victim", log)  # dies mid-write, target torn

        # The live checkpoint is garbage; prev holds exactly 16 tested.
        report = fsck_store(tmp_path, repair=True)
        assert report["repaired"] == 1
        recovered = store.load_progress("victim")
        assert recovered.done_count == 16  # exact: the last durable state
        assert recovered.check_invariant()
        assert fsck_store(tmp_path)["clean"] is True

    def test_cli_resume_repairs_a_torn_checkpoint(self, tmp_path, capsys):
        password = "maaa"  # ~46% into the length-4 space: many generations
        digest = hashlib.md5(password.encode()).hexdigest()
        args = [
            "crack", digest, "--charset", "lower",
            "--min-length", "4", "--max-length", "4",
            "--checkpoint-dir", str(tmp_path),
            "--chunk-size", "5000", "--job-id", "tornjob",
        ]
        assert main(args) == 0  # a full healthy run, several generations
        capsys.readouterr()

        job_dir = tmp_path / "tornjob"
        prev = json.loads((job_dir / "checkpoint.prev.json").read_text())
        prev_done = ProgressLog.from_json(json.dumps(prev["progress"])).done_count
        payload = (job_dir / "checkpoint.json").read_text()
        (job_dir / "checkpoint.json").write_text(payload[: len(payload) // 2])

        # The rerun hits CorruptCheckpointError, repairs in place, resumes
        # from the previous generation, and still finds the password.
        assert main(args) == 0
        out = capsys.readouterr()
        assert "repairing store" in out.err
        assert (
            f"resuming job tornjob: {prev_done:,}/{26**4:,} recovered" in out.out
        )
        assert f"FOUND: '{password}'" in out.out


class TestKillDuringCheckpointStorm:
    """SIGKILL a checkpointing crack while its store injects torn writes:
    the resume recovers the last consistent checkpoint, never zero."""

    PASSWORD = "aaaam"
    CHUNK = 20_000

    @pytest.mark.slow
    def test_sigkill_with_torn_tail_resumes_from_prev(self, tmp_path, capsys):
        digest = hashlib.md5(self.PASSWORD.encode()).hexdigest()
        args = [
            "crack", digest, "--charset", "lower",
            "--min-length", "5", "--max-length", "5",
            "--checkpoint-dir", str(tmp_path),
            "--chunk-size", str(self.CHUNK), "--job-id", "stormy",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        checkpoint = tmp_path / "stormy" / "checkpoint.json"
        prev = tmp_path / "stormy" / "checkpoint.prev.json"
        def durable_done(path):
            # Reads race the crack's atomic rewrites, so any torn view
            # (missing file, half-superseded parse) just means "not yet".
            try:
                doc = json.loads(path.read_text())
                return ProgressLog.from_json(json.dumps(doc["progress"])).done_count
            except (OSError, KeyError, ValueError):
                return 0

        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                # Wait until prev retains a generation with real coverage
                # (the first prev is the empty submit-time checkpoint).
                if durable_done(prev) > 0:
                    break
                assert proc.poll() is None, "crack finished before the kill"
                time.sleep(0.01)
            else:
                pytest.fail("no non-empty prev generation within deadline")
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        # The kill landed "mid-write": make the live checkpoint torn, the
        # way a crashed write under a lying disk leaves it.
        payload = checkpoint.read_text()
        checkpoint.write_text(payload[: len(payload) // 2])
        prev_doc = json.loads(prev.read_text())
        prev_done = ProgressLog.from_json(
            json.dumps(prev_doc["progress"])
        ).done_count
        assert prev_done > 0

        assert main(args) == 0
        out = capsys.readouterr()
        assert "repairing store" in out.err
        assert f"{prev_done:,}" in out.out  # exact recovered tested count
        assert f"FOUND: '{self.PASSWORD}'" in out.out
        restored = json.loads(checkpoint.read_text())
        final = ProgressLog.from_json(json.dumps(restored["progress"]))
        assert final.check_invariant()
