"""Fault-injection shim: config parsing, determinism, on-disk semantics.

Each fault kind has a precise disk contract (see faultfs's module doc):
``enospc`` leaves the target untouched, ``eio`` leaves an orphan ``.tmp``,
``torn`` corrupts the target *and* raises, ``fsync_lie`` corrupts it
silently.  These tests pin those contracts down file-by-file, because
``repro fsck`` and the storm test both depend on them exactly.
"""

import errno
import json

import pytest

from repro.obs import MetricNames, Recorder
from repro.service.faultfs import FAULT_KINDS, FaultConfig, FaultInjector, InjectedFault
from repro.service.jobstore import atomic_write_json

DOC = {"schema": "repro-job/v1", "kind": "job", "payload": "x" * 200}


def write(tmp_path, injector, name="doc.json"):
    path = tmp_path / name
    atomic_write_json(path, DOC, faults=injector)
    return path


def always(kind, seed=0):
    """An injector that fires *kind* on every write."""
    return FaultInjector(FaultConfig(**{kind: 1.0, "seed": seed}))


class TestFaultConfig:
    def test_parse_full_spec(self):
        config = FaultConfig.parse("torn=0.05, eio=0.02,fsync-lie=0.01,seed=7")
        assert config.torn == 0.05
        assert config.eio == 0.02
        assert config.fsync_lie == 0.01
        assert config.enospc == 0.0
        assert config.seed == 7
        assert config.enabled

    def test_parse_empty_spec_is_disabled(self):
        config = FaultConfig.parse("")
        assert not config.enabled
        assert config.total_rate == 0.0

    @pytest.mark.parametrize(
        "spec", ["bogus=0.1", "torn", "torn=0.1,unknown-knob=1"]
    )
    def test_parse_rejects_unknown_or_malformed(self, spec):
        with pytest.raises(ValueError):
            FaultConfig.parse(spec)

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultConfig(torn=1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultConfig(eio=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError, match="sum"):
            FaultConfig(torn=0.6, eio=0.6)
        FaultConfig(torn=0.5, eio=0.5)  # exactly 1.0 is legal


class TestDeterminism:
    def test_same_seed_same_schedule(self, tmp_path):
        def schedule(seed):
            (tmp_path / str(seed)).mkdir(exist_ok=True)
            injector = FaultInjector(
                FaultConfig(torn=0.1, enospc=0.1, eio=0.1, fsync_lie=0.1, seed=seed)
            )
            kinds = []
            for i in range(200):
                try:
                    write(tmp_path / str(seed), injector, f"doc-{i}.json")
                    kinds.append(None)
                except InjectedFault as exc:
                    kinds.append(exc.kind)
            # fsync_lie never raises; recover it from the tally deltas.
            return kinds, dict(injector.counts)

        kinds_a, counts_a = schedule(42)
        kinds_b, counts_b = schedule(42)
        kinds_c, counts_c = schedule(43)
        assert kinds_a == kinds_b
        assert counts_a == counts_b
        assert sum(counts_a.values()) > 0  # 40% rate over 200 writes: fired
        assert (kinds_a, counts_a) != (kinds_c, counts_c)

    def test_zero_rate_never_fires(self, tmp_path):
        injector = FaultInjector(FaultConfig())
        for i in range(50):
            write(tmp_path, injector, f"doc-{i}.json")
        assert injector.total_injected == 0


class TestFaultSemantics:
    def test_enospc_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"old": True})
        injector = always("enospc")
        with pytest.raises(InjectedFault) as info:
            atomic_write_json(path, DOC, faults=injector)
        assert info.value.kind == "enospc"
        assert info.value.errno == errno.ENOSPC
        assert isinstance(info.value, OSError)  # prod code catches OSError
        assert json.loads(path.read_text()) == {"old": True}
        assert not path.with_name("doc.json.tmp").exists()

    def test_eio_leaves_orphan_tmp_and_intact_target(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"old": True})
        injector = always("eio")
        with pytest.raises(InjectedFault) as info:
            atomic_write_json(path, DOC, faults=injector)
        assert info.value.errno == errno.EIO
        assert json.loads(path.read_text()) == {"old": True}
        tmp = path.with_name("doc.json.tmp")
        assert tmp.exists()  # the orphan fsck sweeps
        with pytest.raises(json.JSONDecodeError):
            json.loads(tmp.read_text())  # half a document

    def test_torn_corrupts_target_and_raises(self, tmp_path):
        injector = always("torn")
        path = tmp_path / "doc.json"
        with pytest.raises(InjectedFault) as info:
            atomic_write_json(path, DOC, faults=injector)
        assert info.value.kind == "torn"
        assert path.exists()
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())

    def test_fsync_lie_corrupts_target_silently(self, tmp_path):
        injector = always("fsync_lie")
        path = write(tmp_path, injector)  # no exception: the lie
        assert injector.counts["fsync_lie"] == 1
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())

    def test_truncation_is_always_invalid_json(self, tmp_path):
        # The detection guarantee: half an indent=2 JSON document never
        # parses, so fsck/validators catch 100% of injected corruption.
        injector = always("fsync_lie")
        for i, doc in enumerate([{"a": 1}, DOC, {"nested": {"x": [1, 2, 3]}}]):
            path = tmp_path / f"v{i}.json"
            atomic_write_json(path, doc, faults=injector)
            with pytest.raises(json.JSONDecodeError):
                json.loads(path.read_text())


class TestAppendFaults:
    def test_append_enospc_raises_before_write(self, tmp_path):
        injector = always("enospc")
        path = tmp_path / "events.log"
        with pytest.raises(InjectedFault) as info:
            injector.before_append(path)
        assert info.value.kind == "enospc"
        assert injector.counts["enospc"] == 1

    def test_append_maps_other_kinds_to_eio(self, tmp_path):
        # Appends are not rename-writes; a drawn "torn" fails like EIO.
        injector = always("torn")
        with pytest.raises(InjectedFault) as info:
            injector.before_append(tmp_path / "events.log")
        assert info.value.kind == "eio"
        assert injector.counts["eio"] == 1
        assert injector.counts["torn"] == 0


class TestAccounting:
    def test_counts_and_recorder_counter(self, tmp_path):
        recorder = Recorder()
        injector = FaultInjector(
            FaultConfig(torn=0.25, enospc=0.25, eio=0.25, fsync_lie=0.25, seed=3),
            recorder=recorder,
        )
        for i in range(40):
            try:
                write(tmp_path, injector, f"doc-{i}.json")
            except InjectedFault:
                pass
        assert injector.total_injected == 40  # total rate 1.0: every write
        for kind in FAULT_KINDS:
            assert (
                recorder.counter_value(MetricNames.FAULT_INJECTED, kind=kind)
                == injector.counts[kind]
            )
        assert recorder.counter_total(MetricNames.FAULT_INJECTED) == 40
