"""Tests for MD4 (RFC 1320) and NTLM cracking."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.ntlm import (
    NTLMCrackStats,
    NTLMTarget,
    crack_ntlm,
    ntlm_digest,
    ntlm_hex,
    utf16le_expand,
)
from repro.hashes.md4 import (
    MD4_INIT,
    md4_compress,
    md4_digest,
    md4_digest_to_state,
    md4_hex,
    md4_message_index,
)
from repro.hashes.padding import Endian, pack_single_block
from repro.hashes.vec_md4 import md4_batch_hex
from repro.keyspace import ALPHA_LOWER, ASCII_PRINTABLE, Charset, Interval

ABC = Charset("abc", name="abc")

#: RFC 1320 appendix A.5 test suite.
MD4_RFC_VECTORS = [
    (b"", "31d6cfe0d16ae931b73c59d7e0c089c0"),
    (b"a", "bde52cb31de33e46245e05fbdbd6fb24"),
    (b"abc", "a448017aaf21d8525fc10ae87aa6729d"),
    (b"message digest", "d9130a8164549fe818874806e1c7014b"),
    (b"abcdefghijklmnopqrstuvwxyz", "d79e1c308aa5bbcdeea8ed63df412da9"),
    (
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "043f8582f241db351ce627e153e7f0e4",
    ),
    (b"1234567890" * 8, "e33b4ddc9c38f2199c3e7b164fcc0536"),
]

#: Well-known NTLM digests (any Windows-security reference lists these).
NTLM_KNOWN = [
    ("password", "8846f7eaee8fb117ad06bdd830b7586c"),
    ("", "31d6cfe0d16ae931b73c59d7e0c089c0"),  # empty = MD4 of empty
    ("admin", "209c6174da490caeb422f3fa5a7ae634"),
]


class TestMD4Scalar:
    @pytest.mark.parametrize("message,expected", MD4_RFC_VECTORS)
    def test_rfc1320_vectors(self, message, expected):
        assert md4_hex(message) == expected

    @pytest.mark.parametrize("length", [0, 1, 54, 55, 56, 57, 63, 64, 65, 128])
    def test_padding_boundaries_stable(self, length):
        # No external oracle: assert multi-block consistency by comparing
        # the one-shot digest with a manual two-pass compress.
        data = b"m" * length
        digest = md4_digest(data)
        assert len(digest) == 16
        # Deterministic and length-sensitive:
        assert digest != md4_digest(data + b"x")

    def test_digest_state_roundtrip(self):
        digest = md4_digest(b"roundtrip")
        from repro.hashes.common import bytes_from_words_le

        assert bytes_from_words_le(md4_digest_to_state(digest)) == digest
        with pytest.raises(ValueError):
            md4_digest_to_state(b"short")

    def test_message_index_orders(self):
        assert [md4_message_index(i) for i in range(3)] == [0, 1, 2]
        assert md4_message_index(16) == 0
        assert md4_message_index(17) == 4
        assert md4_message_index(32) == 0
        assert md4_message_index(33) == 8
        with pytest.raises(ValueError):
            md4_message_index(48)

    def test_compress_feedforward(self):
        block = list(range(16))
        out = md4_compress(MD4_INIT, block)
        assert out != MD4_INIT
        assert all(0 <= w < 2**32 for w in out)


class TestMD4Vectorized:
    @given(length=st.integers(0, 27), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_lanes_match_scalar(self, length, seed):
        rng = np.random.default_rng(seed)
        chars = rng.integers(33, 126, size=(8, length), dtype=np.uint8)
        hexes = md4_batch_hex(pack_single_block(chars, Endian.LITTLE))
        for row, hexdigest in zip(chars, hexes):
            assert hexdigest == md4_digest(row.tobytes()).hex()

    def test_shape_checks(self):
        from repro.hashes.vec_md4 import md4_batch

        with pytest.raises(ValueError):
            md4_batch(np.zeros((2, 8), dtype=np.uint32))
        with pytest.raises(TypeError):
            md4_batch(np.zeros((2, 16), dtype=np.int64))


class TestNTLM:
    @pytest.mark.parametrize("password,expected", NTLM_KNOWN)
    def test_known_digests(self, password, expected):
        assert ntlm_hex(password) == expected

    def test_utf16le_expand(self):
        chars = np.frombuffer(b"Ab", dtype=np.uint8).reshape(1, 2)
        wide = utf16le_expand(chars)
        assert wide.tobytes() == b"A\x00b\x00"
        with pytest.raises(ValueError):
            utf16le_expand(np.zeros(3, dtype=np.uint8))

    def test_digest_matches_manual_encoding(self):
        assert ntlm_digest("S3cret") == md4_digest("S3cret".encode("utf-16-le"))


class TestNTLMCracking:
    def test_cracks_planted_password(self):
        target = NTLMTarget.from_password("cab", ABC, max_length=4)
        stats = NTLMCrackStats()
        matches = crack_ntlm(target, stats=stats, batch_size=101)
        assert (target.mapping.index_of("cab"), "cab") in matches
        assert stats.tested == target.space_size
        assert stats.mkeys_per_second > 0

    def test_cracks_realistic_password(self):
        target = NTLMTarget.from_password("dog", ALPHA_LOWER, max_length=3)
        matches = crack_ntlm(target)
        assert [k for _, k in matches] == ["dog"]
        assert target.verify("dog")

    def test_printable_charset_candidate(self):
        target = NTLMTarget.from_password("a!", ASCII_PRINTABLE, max_length=2)
        assert [k for _, k in crack_ntlm(target)] == ["a!"]

    def test_validation(self):
        with pytest.raises(ValueError, match="16 bytes"):
            NTLMTarget(b"short", ABC)
        with pytest.raises(ValueError, match="capped at 27"):
            NTLMTarget(ntlm_digest("x"), ABC, max_length=28)
        with pytest.raises(ValueError, match="outside the charset"):
            NTLMTarget.from_password("XYZ", ABC)

    def test_interval_and_batch_validation(self):
        target = NTLMTarget.from_password("ab", ABC, max_length=2)
        with pytest.raises(ValueError):
            crack_ntlm(target, batch_size=0)
        with pytest.raises(IndexError):
            crack_ntlm(target, Interval(0, target.space_size + 1))

    def test_no_match(self):
        target = NTLMTarget(ntlm_digest("outside"), ABC, max_length=2)
        assert crack_ntlm(target) == []

    def test_ntlm_is_unsalted_hence_rainbowable(self):
        # The §I argument in Windows clothing: identical passwords hash
        # identically across all accounts — precomputation applies.
        assert ntlm_digest("Summer2014") == ntlm_digest("Summer2014")
        # (contrast with test_apps_rainbow's salted-MD5 cases)


class TestMD4Reversal:
    """The BarsWF trick transfers to MD4 (the NTLM fast path)."""

    def probe(self, message: bytes):
        from repro.hashes.padding import pad_message

        return pad_message(message, Endian.LITTLE)[0]

    def test_unstep_inverts_step(self):
        from repro.hashes.md4 import md4_step
        from repro.hashes.md4_reversal import md4_unstep

        rng = np.random.default_rng(11)
        for step in range(48):
            state = tuple(int(x) for x in rng.integers(0, 2**32, size=4))
            block = [int(x) for x in rng.integers(0, 2**32, size=16)]
            after = md4_step(step, state, block)
            assert md4_unstep(step, after, block[md4_message_index(step)]) == state

    def test_reverse_meets_forward_at_step_33(self):
        from repro.hashes.md4 import md4_step
        from repro.hashes.md4_reversal import md4_reverse_tail

        message = b"ntlm-middle"
        template = self.probe(message)
        digest = md4_digest(message)
        state = MD4_INIT
        for step in range(33):
            state = md4_step(step, state, template)
        assert md4_reverse_tail(digest, template) == state

    def test_reversal_ignores_word0(self):
        from repro.hashes.md4_reversal import md4_reverse_tail

        message = b"word0-free"
        template = list(self.probe(message))
        digest = md4_digest(message)
        poisoned = list(template)
        poisoned[0] = 0x12345678
        assert md4_reverse_tail(digest, template) == md4_reverse_tail(digest, poisoned)

    def test_search_block_finds_planted_word(self):
        from repro.hashes.md4_reversal import MD4ReversedTarget, md4_search_block

        message = b"findme!!"
        template = self.probe(message)
        target = MD4ReversedTarget.from_digest(md4_digest(message), template)
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**32, size=4096, dtype=np.uint32)
        words[777] = template[0]
        assert md4_search_block(words, target).tolist() == [777]

    def test_no_false_positives(self):
        from repro.hashes.md4_reversal import MD4ReversedTarget, md4_search_block

        template = self.probe(b"haystack")
        target = MD4ReversedTarget.from_digest(md4_digest(b"elsewhere"), template)
        words = np.arange(8192, dtype=np.uint32)
        assert md4_search_block(words, target).size == 0

    def test_validation(self):
        from repro.hashes.md4_reversal import MD4ReversedTarget, md4_reverse_tail, md4_search_block

        template = self.probe(b"v")
        with pytest.raises(ValueError):
            md4_reverse_tail(md4_digest(b"v"), template, steps=16)
        with pytest.raises(ValueError):
            MD4ReversedTarget.from_digest(md4_digest(b"v"), [0] * 4)
        target = MD4ReversedTarget.from_digest(md4_digest(b"v"), template)
        with pytest.raises(TypeError):
            md4_search_block(np.zeros(4, dtype=np.int64), target)


class TestNTLMFastPath:
    def test_fast_and_naive_agree(self):
        target = NTLMTarget.from_password("bca", ABC, max_length=4)
        fast = crack_ntlm(target, batch_size=53)
        naive = crack_ntlm(target, batch_size=53, force_naive=True)
        assert fast == naive
        assert ("bca" in [k for _, k in fast])

    def test_fast_path_on_realistic_charset(self):
        target = NTLMTarget.from_password("dg", ALPHA_LOWER, max_length=2)
        matches = crack_ntlm(target)
        assert [k for _, k in matches] == ["dg"]

    def test_single_char_keys_use_small_runs(self):
        # length 1: runs of N (one UTF-16 char in word 0's low half).
        target = NTLMTarget.from_password("b", ABC, max_length=1)
        assert [k for _, k in crack_ntlm(target)] == ["b"]
