"""Suite-wide isolation fixtures."""

import os

import pytest


@pytest.fixture(autouse=True)
def _isolate_tuning_store(monkeypatch, tmp_path):
    """Keep the repo's committed ``tuning.json`` out of test runs.

    ``resolve_backend`` consults the default tuning store (cwd-relative),
    so a tuning file at the repo root would silently change dispatch
    behaviour — chunk sizing, span widths, preemption granularity — for
    any test that does not opt in.  Tests that want a store set
    ``REPRO_TUNING_FILE`` themselves (see ``tests/test_tuning.py``).
    """
    if "REPRO_TUNING_FILE" not in os.environ:
        monkeypatch.setenv("REPRO_TUNING_FILE", str(tmp_path / "no-tuning.json"))
