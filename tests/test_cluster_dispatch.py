"""Tests for adaptive dispatching (the dynamic-network extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.dispatch import AdaptiveDispatcher
from repro.keyspace import Interval


TRUE_RATES = {"fast": 1800e6, "mid": 650e6, "slow": 70e6}


def dispatcher(estimates=None, alpha=0.5):
    return AdaptiveDispatcher(estimates or {k: 500e6 for k in TRUE_RATES}, alpha=alpha)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveDispatcher({})
        with pytest.raises(ValueError):
            AdaptiveDispatcher({"a": 0.0})
        with pytest.raises(ValueError):
            AdaptiveDispatcher({"a": 1.0}, alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveDispatcher({"a": 1.0}, alpha=1.5)


class TestPlanning:
    def test_plan_follows_current_estimates(self):
        d = AdaptiveDispatcher({"a": 3e6, "b": 1e6})
        plan = d.plan_round(Interval(0, 4_000_000))
        assert plan["a"].size == pytest.approx(3_000_000, abs=2)
        assert plan["b"].size == pytest.approx(1_000_000, abs=2)

    def test_plan_tiles_interval(self):
        d = dispatcher()
        plan = d.plan_round(Interval(7, 1_000_007))
        assert sum(p.size for p in plan.values()) == 1_000_000

    def test_report_moves_estimate(self):
        d = AdaptiveDispatcher({"a": 1e6}, alpha=0.5)
        d.report("a", candidates=2_000_000, elapsed=1.0)  # observed 2e6
        assert d.estimates["a"].rate == pytest.approx(1.5e6)
        d.report("a", candidates=0, elapsed=1.0)  # empty share: ignored
        assert d.estimates["a"].rounds_seen == 1


class TestConvergence:
    def test_wrong_estimates_converge(self):
        # Start believing everyone is equal; reality is 25x skewed.
        d = dispatcher()
        history = d.run_simulated(
            total_candidates=50 * 10**9,
            round_size=10**9,
            true_rate=lambda name, _r: TRUE_RATES[name],
        )
        assert history[0].imbalance > 0.5  # badly unbalanced at first
        assert history[-1].imbalance < 0.01  # essentially equalized
        assert d.estimate_error(TRUE_RATES) < 0.01

    def test_imbalance_decays_geometrically(self):
        d = dispatcher(alpha=1.0)  # trust the last observation fully
        history = d.run_simulated(10 * 10**9, 10**9, lambda n, _r: TRUE_RATES[n])
        # With alpha=1 and stationary rates, one round suffices (up to the
        # +-1-candidate rounding of the integer partition).
        assert history[1].imbalance < 1e-6

    def test_adapts_to_mid_run_throttling(self):
        # 'fast' loses half its speed at round 10 (thermal throttling).
        def rate(name, round_index):
            if name == "fast" and round_index >= 10:
                return TRUE_RATES["fast"] / 2
            return TRUE_RATES[name]

        d = dispatcher()
        history = d.run_simulated(40 * 10**9, 10**9, rate)
        spike = history[10].imbalance  # the throttle hits
        settled = history[-1].imbalance
        assert spike > 0.1
        assert settled < 0.02

    def test_assignments_track_the_new_regime(self):
        def rate(name, round_index):
            return 100e6 if round_index >= 5 else TRUE_RATES[name]

        d = dispatcher()
        d.run_simulated(20 * 10**9, 10**9, rate)
        last = d.history[-1].assignments
        sizes = list(last.values())
        # All workers equal now: shares within a few percent of each other.
        assert max(sizes) / min(sizes) < 1.05

    def test_invalid_run_args(self):
        d = dispatcher()
        with pytest.raises(ValueError):
            d.run_simulated(0, 10, lambda n, r: 1.0)
        with pytest.raises(ValueError):
            d.run_simulated(10, 0, lambda n, r: 1.0)

    @settings(max_examples=15, deadline=None)
    @given(
        skew=st.floats(1.0, 50.0),
        alpha=st.floats(0.2, 1.0),
    )
    def test_property_converges_for_any_skew(self, skew, alpha):
        rates = {"a": 1e8, "b": 1e8 * skew}
        d = AdaptiveDispatcher({"a": 1e8, "b": 1e8}, alpha=alpha)
        history = d.run_simulated(30 * 10**8, 10**8, lambda n, _r: rates[n])
        assert history[-1].imbalance < 0.05
