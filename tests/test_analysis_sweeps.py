"""Tests for the sweep series and the ASCII renderer."""

import pytest

from repro.analysis.sweeps import (
    Series,
    ascii_plot,
    efficiency_vs_interval,
    speedup_series,
    throughput_vs_nodes,
)
from repro.gpusim.launch import LaunchModel


class TestSeries:
    def test_validation(self):
        with pytest.raises(ValueError, match="align"):
            Series("s", (1, 2), (1.0,))
        with pytest.raises(ValueError, match="non-empty"):
            Series("s", (), ())


class TestAsciiPlot:
    def test_renders_extremes_and_label(self):
        s = Series("demo", (1, 10, 100), (0.0, 0.5, 1.0))
        text = ascii_plot(s)
        assert "demo" in text
        assert "*" in text
        assert text.count("*") == 3
        lines = text.splitlines()
        assert "*" in lines[1]  # the max sits on the top row
        assert "*" in lines[-3]  # the min sits on the bottom row

    def test_flat_series_does_not_divide_by_zero(self):
        s = Series("flat", (1, 2, 3), (5.0, 5.0, 5.0))
        assert ascii_plot(s).count("*") == 3

    def test_size_validation(self):
        s = Series("s", (1,), (1.0,))
        with pytest.raises(ValueError):
            ascii_plot(s, width=4)

    def test_single_point(self):
        assert "*" in ascii_plot(Series("one", (5,), (2.0,)))


class TestSweeps:
    def test_efficiency_curve_monotone(self):
        series = efficiency_vs_interval(LaunchModel(peak_rate=1e9))
        assert list(series.ys) == sorted(series.ys)
        assert series.ys[-1] > 0.99

    def test_throughput_scales_linearly(self):
        series = throughput_vs_nodes(counts=(1, 2, 4))
        speedups = speedup_series(series)
        assert speedups.ys[0] == pytest.approx(1.0)
        assert speedups.ys[1] == pytest.approx(2.0, rel=0.05)
        assert speedups.ys[2] == pytest.approx(4.0, rel=0.05)

    def test_speedup_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            speedup_series(Series("z", (1, 2), (0.0, 1.0)))
