"""Fault injection: chaos config/wrappers, and a full run under chaos."""

import socket

import pytest

from repro.apps.cracking import CrackTarget
from repro.cluster.chaos import ChaosConfig, ChaosStream, ChaosTransport
from repro.cluster.health import HealthConfig
from repro.cluster.runtime import DistributedMaster, InProcessTransport, WorkerConfig
from repro.cluster.transport import MessageStream
from repro.keyspace import Charset
from repro.obs import Recorder
from repro.obs.schema import MetricNames

ABC = Charset("abc", name="abc")


class TestChaosConfig:
    def test_parse_full_spec(self):
        cfg = ChaosConfig.parse(
            "drop=0.1, delay=0.3, delay-seconds=0.5, duplicate=0.05, corrupt=0.02, seed=7"
        )
        assert cfg == ChaosConfig(
            drop=0.1, delay=0.3, delay_seconds=0.5,
            duplicate=0.05, corrupt=0.02, seed=7,
        )
        assert cfg.active

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="key=value"):
            ChaosConfig.parse("drop")
        with pytest.raises(ValueError, match="unknown chaos knob"):
            ChaosConfig.parse("explode=1")

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(drop=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(delay_seconds=-1)

    def test_inactive_by_default(self):
        assert not ChaosConfig().active


def _pair():
    a, b = socket.socketpair()
    return MessageStream(a), MessageStream(b)


class TestChaosStream:
    def test_drop_everything(self):
        left, right = _pair()
        try:
            chaotic = ChaosStream(left, ChaosConfig(drop=1.0, seed=1))
            chaotic.send(b"into the void")
            assert right.recv(timeout=0.1) is None
            assert chaotic.faults.dropped == 1
        finally:
            left.close()
            right.close()

    def test_duplicate_everything(self):
        left, right = _pair()
        try:
            chaotic = ChaosStream(left, ChaosConfig(duplicate=1.0, seed=1))
            chaotic.send(b"twice")
            assert right.recv(timeout=1) == b"twice"
            assert right.recv(timeout=1) == b"twice"
            assert chaotic.faults.duplicated == 1
        finally:
            left.close()
            right.close()

    def test_corruption_is_caught_by_the_crc(self):
        left, right = _pair()
        try:
            chaotic = ChaosStream(left, ChaosConfig(corrupt=1.0, seed=1))
            chaotic.send(b"bit rot incoming")
            # The flipped byte breaks the CRC: the receiver detects and
            # skips the frame instead of surfacing garbage.
            assert right.recv(timeout=0.2) is None
            assert right.corrupt_frames == 1
            assert chaotic.faults.corrupted == 1
        finally:
            left.close()
            right.close()


class _FakeInner:
    """Minimal poll/send/workers transport for wrapper tests."""

    def __init__(self):
        self.items = []
        self.sent = []

    def poll(self, timeout):
        return self.items.pop(0) if self.items else None

    def send(self, worker, payload):
        self.sent.append((worker, payload))
        return True

    def workers(self):
        return ["w"]

    def close(self):
        pass


class TestChaosTransport:
    def test_poll_drop_counts_and_records(self):
        inner = _FakeInner()
        inner.items = [("w", b"reply")]
        rec = Recorder()
        chaotic = ChaosTransport(inner, ChaosConfig(drop=1.0, seed=3), recorder=rec)
        assert chaotic.poll(0) is None
        assert chaotic.faults.dropped == 1
        assert rec.counter_value(MetricNames.CHAOS_DROPPED) == 1

    def test_poll_delay_holds_until_release(self):
        inner = _FakeInner()
        inner.items = [("w", b"late reply")]
        now = [0.0]
        chaotic = ChaosTransport(
            inner,
            ChaosConfig(delay=1.0, delay_seconds=5.0, seed=3),
            clock=lambda: now[0],
        )
        assert chaotic.poll(0) is None  # held back
        assert chaotic.poll(0) is None  # still in the future
        now[0] = 6.0
        assert chaotic.poll(0) == ("w", b"late reply")
        assert chaotic.faults.delayed == 1

    def test_poll_duplicate_delivers_twice(self):
        inner = _FakeInner()
        inner.items = [("w", b"echo")]
        chaotic = ChaosTransport(inner, ChaosConfig(duplicate=1.0, seed=3))
        assert chaotic.poll(0) == ("w", b"echo")
        assert chaotic.poll(0) == ("w", b"echo")
        assert chaotic.poll(0) is None

    def test_poll_corrupts_payload_bytes(self):
        inner = _FakeInner()
        inner.items = [("w", b"pristine")]
        chaotic = ChaosTransport(inner, ChaosConfig(corrupt=1.0, seed=3))
        name, payload = chaotic.poll(0)
        assert name == "w" and payload != b"pristine"

    def test_disconnect_marker_is_never_mangled(self):
        inner = _FakeInner()
        inner.items = [("w", None)]
        chaotic = ChaosTransport(
            inner, ChaosConfig(drop=1.0, corrupt=1.0, seed=3)
        )
        assert chaotic.poll(0) == ("w", None)
        assert chaotic.faults.dropped == 0

    def test_send_drop_pretends_success(self):
        inner = _FakeInner()
        chaotic = ChaosTransport(inner, ChaosConfig(drop=1.0, seed=3))
        assert chaotic.send("w", b"scatter") is True
        assert inner.sent == []  # the liveness layer must notice


class TestRunUnderChaos:
    def test_master_completes_with_exact_coverage(self):
        """Moderate seeded chaos on both directions: dropped scatters,
        dropped/duplicated/corrupted/delayed gathers.  The liveness layer
        (deadlines + heartbeats + idempotent replies) must still deliver
        exactly-once coverage and find the key."""
        target = CrackTarget.from_password("ccba", ABC, min_length=1, max_length=4)
        rec = Recorder()
        inner = InProcessTransport(
            [WorkerConfig("w0", batch_size=16), WorkerConfig("w1", batch_size=16)],
            heartbeat_interval=0.05,
        )
        chaos = ChaosConfig(
            drop=0.1, delay=0.1, delay_seconds=0.02,
            duplicate=0.1, corrupt=0.05, seed=1234,
        )
        transport = ChaosTransport(inner, chaos, recorder=rec).start()
        try:
            master = DistributedMaster(
                target,
                transport=transport,
                chunk_size=13,
                reply_timeout=0.4,
                health=HealthConfig(
                    heartbeat_interval=0.05,
                    quarantine_period=0.3,
                    min_deadline=0.2,
                ),
            )
            result = master.run(recorder=rec)
        finally:
            transport.close()
        assert "ccba" in result.keys
        assert result.progress.is_complete
        assert result.progress.check_invariant()
        assert result.progress.done_count == target.space_size
        # The run's metrics document what the network did to it.
        faults = transport.faults
        injected = faults.dropped + faults.delayed + faults.duplicated + faults.corrupted
        assert injected > 0, "seeded chaos injected nothing; raise the rates"
        total_recorded = sum(
            rec.counter_value(name)
            for name in (
                MetricNames.CHAOS_DROPPED,
                MetricNames.CHAOS_DELAYED,
                MetricNames.CHAOS_DUPLICATED,
                MetricNames.CHAOS_CORRUPTED,
            )
        )
        assert total_recorded == injected


class TestElasticJoinUnderChaos:
    def test_half_the_fleet_joins_midway_and_the_answer_stays_exact(self):
        """The elastic acceptance scenario under seeded chaos: two
        workers start the run, two more join once half the keyspace is
        covered, and the seeded fault schedule keeps dropping/duping/
        corrupting frames throughout.  The key and the tested count must
        come out exact anyway."""
        target = CrackTarget.from_password("ccba", ABC, min_length=1, max_length=5)
        rec = Recorder()
        inner = InProcessTransport(
            [WorkerConfig("w0", batch_size=16), WorkerConfig("w1", batch_size=16)],
            heartbeat_interval=0.05,
        )
        chaos = ChaosConfig(
            drop=0.08, delay=0.08, delay_seconds=0.02,
            duplicate=0.08, corrupt=0.04, seed=2026,
        )
        transport = ChaosTransport(inner, chaos, recorder=rec).start()
        half = target.space_size // 2
        joined = []

        def join_at_half(log):
            # Runs on the gather loop at every chunk boundary, so the
            # join lands at a deterministic point of the schedule.
            if not joined and log.done_count >= half:
                for name in ("w2", "w3"):
                    inner.add_worker(WorkerConfig(name, batch_size=16))
                    joined.append(name)

        try:
            master = DistributedMaster(
                target,
                transport=transport,
                chunk_size=13,
                reply_timeout=0.4,
                health=HealthConfig(
                    heartbeat_interval=0.05,
                    quarantine_period=0.3,
                    min_deadline=0.2,
                ),
            )
            result = master.run(
                recorder=rec, checkpoint=join_at_half, checkpoint_every=1
            )
        finally:
            transport.close()
        assert joined == ["w2", "w3"]
        assert "ccba" in result.keys
        assert result.tested == target.space_size
        assert result.progress.is_complete
        assert result.progress.check_invariant()
        assert result.progress.done_count == target.space_size
        # The late arrivals were dispatched real work from the pending
        # queue: both report measured throughput by the end.
        assert {"w2", "w3"} <= set(result.worker_throughput)
        faults = transport.faults
        injected = (
            faults.dropped + faults.delayed + faults.duplicated + faults.corrupted
        )
        assert injected > 0, "seeded chaos injected nothing; raise the rates"
