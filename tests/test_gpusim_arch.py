"""Tests for architecture tables (Tables I, II) and the device catalog (VII)."""

import pytest

from repro.gpusim import (
    ARCHITECTURES,
    ComputeCapability,
    DEVICES,
    INSTRUCTION_THROUGHPUT,
    PAPER_DEVICES,
    family_of_cc,
    get_device,
)
from repro.gpusim.arch import arch_for_cc
from repro.gpusim.device import DeviceSpec
from repro.kernels.isa import InstructionClass, InstructionMix


class TestComputeCapability:
    def test_parse_and_str(self):
        cc = ComputeCapability.parse("2.1")
        assert (cc.major, cc.minor) == (2, 1)
        assert str(cc) == "2.1"

    def test_family_mapping(self):
        assert family_of_cc("1.1") == "1.x"
        assert family_of_cc("1.3") == "1.x"
        assert family_of_cc("2.0") == "2.x"
        assert family_of_cc("2.1") == "2.x"
        assert family_of_cc("3.0") == "3.0"
        assert family_of_cc("3.5") == "3.5"
        assert family_of_cc("3.7") == "3.5"

    def test_unmodelled_capability(self):
        with pytest.raises(ValueError, match="not modelled"):
            family_of_cc("5.0")


class TestTableI:
    """The multiprocessor architecture table, verbatim."""

    @pytest.mark.parametrize(
        "name,cores,groups,size,issue,scheds,dual",
        [
            ("1.*", 8, 1, 8, 4, 1, False),
            ("2.0", 32, 2, 16, 2, 2, False),
            ("2.1", 48, 3, 16, 2, 2, True),
            ("3.0", 192, 6, 32, 1, 4, True),
        ],
    )
    def test_rows(self, name, cores, groups, size, issue, scheds, dual):
        arch = ARCHITECTURES[name]
        assert arch.cores_per_mp == cores
        assert arch.core_groups == groups
        assert arch.group_size == size
        assert arch.issue_time == issue
        assert arch.warp_schedulers == scheds
        assert arch.dual_issue == dual

    def test_consistency_invariant(self):
        for arch in ARCHITECTURES.values():
            assert arch.cores_per_mp == arch.core_groups * arch.group_size


class TestTableII:
    """Instruction throughput per class, verbatim."""

    @pytest.mark.parametrize(
        "cls,expected",
        [
            (InstructionClass.IADD, {"1.*": 10, "2.0": 32, "2.1": 48, "3.0": 160}),
            (InstructionClass.LOP, {"1.*": 8, "2.0": 32, "2.1": 48, "3.0": 160}),
            (InstructionClass.SHIFT, {"1.*": 8, "2.0": 16, "2.1": 16, "3.0": 32}),
            (InstructionClass.IMAD, {"1.*": 8, "2.0": 16, "2.1": 16, "3.0": 32}),
        ],
    )
    def test_rows(self, cls, expected):
        for name, value in expected.items():
            assert ARCHITECTURES[name].peak_ops(cls) == value

    def test_reference_dict_matches_arch_objects(self):
        names = {"32-bit integer ADD": InstructionClass.IADD,
                 "32-bit bitwise AND/OR/XOR": InstructionClass.LOP,
                 "32-bit integer shift": InstructionClass.SHIFT,
                 "32-bit integer MAD": InstructionClass.IMAD}
        for row, cls in names.items():
            for arch_name, value in INSTRUCTION_THROUGHPUT[row].items():
                assert ARCHITECTURES[arch_name].peak_ops(cls) == value

    def test_funnel_shift_doubles_on_35(self):
        # Section V-B: funnel shift at double speed => 4x rotate throughput.
        assert ARCHITECTURES["3.5"].peak_ops(InstructionClass.FUNNEL) == 64
        assert ARCHITECTURES["3.0"].peak_ops(InstructionClass.SHIFT) == 32

    def test_shift_mad_demand(self):
        arch = ARCHITECTURES["3.0"]
        mix = InstructionMix.of(SHIFT=43, IMAD=43, PRMT=3)
        assert arch.shift_mad_demand(mix) == pytest.approx(89 / 32)


class TestDeviceCatalog:
    """Table VII, verbatim."""

    @pytest.mark.parametrize(
        "name,mp,cores,clock,cc",
        [
            ("8600M", 4, 32, 950, "1.1"),
            ("8800", 16, 128, 1625, "1.1"),
            ("540M", 2, 96, 1344, "2.1"),
            ("550Ti", 4, 192, 1800, "2.1"),
            ("660", 5, 960, 1033, "3.0"),
        ],
    )
    def test_paper_rows(self, name, mp, cores, clock, cc):
        dev = PAPER_DEVICES[name]
        assert dev.multiprocessors == mp
        assert dev.cores == cores
        assert dev.clock_mhz == clock
        assert str(dev.compute_capability) == cc

    def test_cores_consistency_enforced(self):
        with pytest.raises(ValueError, match="inconsistent"):
            DeviceSpec("bad", 4, 33, 950, ComputeCapability.parse("1.1"))

    def test_positive_parameters_enforced(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", 0, 0, 950, ComputeCapability.parse("1.1"))

    def test_get_device(self):
        assert get_device("660").family == "3.0"
        with pytest.raises(ValueError, match="unknown device"):
            get_device("9999GTX")

    def test_extended_catalog_has_35_part(self):
        assert DEVICES["TitanCC35"].family == "3.5"

    def test_arch_for_cc_aliases(self):
        assert arch_for_cc("1.3") is ARCHITECTURES["1.*"]
        assert arch_for_cc("3.7") is ARCHITECTURES["3.5"]
        with pytest.raises(ValueError):
            arch_for_cc("2.5")
