"""Property tests for the shared 32-bit arithmetic helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashes.common import (
    IntOps,
    MASK32,
    bytes_from_words_be,
    bytes_from_words_le,
    np_rotl32,
    np_rotr32,
    rotl32,
    rotr32,
    words_from_bytes_be,
    words_from_bytes_le,
)

u32 = st.integers(0, MASK32)
rot = st.integers(0, 64)


class TestScalarRotations:
    @given(x=u32, n=rot)
    def test_rotl_rotr_inverse(self, x, n):
        assert rotr32(rotl32(x, n), n) == x

    @given(x=u32, n=rot)
    def test_rotl_is_rotr_complement(self, x, n):
        assert rotl32(x, n) == rotr32(x, 32 - (n & 31))

    @given(x=u32)
    def test_rotate_by_zero_and_32(self, x):
        assert rotl32(x, 0) == x
        assert rotl32(x, 32) == x

    @given(x=u32, n=rot, m=rot)
    def test_rotation_composes_additively(self, x, n, m):
        assert rotl32(rotl32(x, n), m) == rotl32(x, (n + m) & 31)

    @given(x=u32, n=rot)
    def test_bit_population_preserved(self, x, n):
        assert bin(rotl32(x, n)).count("1") == bin(x).count("1")


class TestIntOps:
    @given(a=u32, b=u32)
    def test_add_wraps(self, a, b):
        assert IntOps.add(a, b) == (a + b) % 2**32

    @given(a=u32)
    def test_bnot_is_involution(self, a):
        assert IntOps.bnot(IntOps.bnot(a)) == a

    @given(a=u32, n=st.integers(0, 31))
    def test_shl_shr(self, a, n):
        assert IntOps.shl(a, n) == (a << n) & MASK32
        assert IntOps.shr(a, n) == a >> n

    @given(x=u32, n=rot)
    def test_rotl_matches_helper(self, x, n):
        assert IntOps.rotl(x, n) == rotl32(x, n)

    def test_const_masks(self):
        assert IntOps.const(2**33 + 5) == 5


class TestNumpyRotations:
    @given(n=rot, seed=st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_lanes_match_scalar(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 2**32, size=16, dtype=np.uint32)
        left = np_rotl32(x, n)
        right = np_rotr32(x, n)
        for lane in range(16):
            assert int(left[lane]) == rotl32(int(x[lane]), n)
            assert int(right[lane]) == rotr32(int(x[lane]), n)

    def test_zero_rotation_is_identity_object(self):
        x = np.arange(4, dtype=np.uint32)
        assert np_rotl32(x, 0) is x
        assert np_rotl32(x, 32) is x


class TestWordConversions:
    @given(words=st.lists(u32, min_size=0, max_size=8))
    def test_le_roundtrip(self, words):
        assert words_from_bytes_le(bytes_from_words_le(words)) == words

    @given(words=st.lists(u32, min_size=0, max_size=8))
    def test_be_roundtrip(self, words):
        assert words_from_bytes_be(bytes_from_words_be(words)) == words

    def test_endianness_differs(self):
        data = bytes(range(8))
        assert words_from_bytes_le(data) != words_from_bytes_be(data)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            words_from_bytes_le(b"abc")
        with pytest.raises(ValueError):
            words_from_bytes_be(b"abcde")
