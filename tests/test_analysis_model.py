"""Tests for the offline performance-model fit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.model import FittedNodeModel, fit_node_model, tuning_samples_from_model
from repro.gpusim.launch import LaunchModel, efficiency_at


def true_model(rate=500e6, overhead=2e-3):
    return LaunchModel(
        peak_rate=rate, launch_overhead=0.0, watchdog_limit=1e9, fixed_overhead=overhead
    )


SIZES = [10**k for k in range(3, 10)]


class TestFit:
    def test_recovers_noiseless_parameters(self):
        model = true_model()
        fitted = fit_node_model(tuning_samples_from_model(model, SIZES))
        assert fitted.peak_rate == pytest.approx(500e6, rel=0.01)
        assert fitted.overhead == pytest.approx(2e-3, rel=0.05)
        assert fitted.residual_rms < 1e-6

    def test_robust_to_measurement_noise(self):
        model = true_model()
        samples = tuning_samples_from_model(model, SIZES, noise=0.03, seed=4)
        fitted = fit_node_model(samples)
        assert fitted.peak_rate == pytest.approx(500e6, rel=0.10)
        assert fitted.residual_rms < 0.1

    @settings(max_examples=20, deadline=None)
    @given(
        rate=st.floats(1e6, 5e9),
        overhead=st.floats(1e-4, 1e-1),
    )
    def test_property_roundtrip(self, rate, overhead):
        model = true_model(rate, overhead)
        fitted = fit_node_model(tuning_samples_from_model(model, SIZES))
        assert fitted.peak_rate == pytest.approx(rate, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 3"):
            fit_node_model([(10, 1.0), (20, 2.0)])
        with pytest.raises(ValueError, match="positive"):
            fit_node_model([(10, 1.0), (20, 2.0), (30, -1.0)])
        with pytest.raises(ValueError, match="distinct"):
            fit_node_model([(10, 1.0), (10, 1.1), (10, 0.9)])


class TestFittedModelUse:
    def test_min_batch_matches_true_tuning(self):
        # The paper's point: the offline model replaces the online step.
        model = true_model()
        fitted = fit_node_model(tuning_samples_from_model(model, SIZES))
        from repro.gpusim.launch import min_batch_for_efficiency

        true_n = min_batch_for_efficiency(model, 0.95)
        fitted_n = fitted.min_batch(0.95)
        assert fitted_n == pytest.approx(true_n, rel=0.05)
        assert efficiency_at(fitted.launch_model(), fitted_n) >= 0.95

    def test_predicted_throughput_curve(self):
        fitted = FittedNodeModel(peak_rate=1e8, overhead=1e-3, residual_rms=0.0)
        assert fitted.predicted_throughput(0) == 0.0
        assert fitted.predicted_throughput(10**12) == pytest.approx(1e8, rel=0.01)
        small = fitted.predicted_throughput(1000)
        assert small < 1e7  # overhead-dominated regime

    def test_launch_model_export(self):
        fitted = FittedNodeModel(peak_rate=2e8, overhead=5e-4, residual_rms=0.0)
        launch = fitted.launch_model(watchdog_limit=3.0)
        assert launch.peak_rate == 2e8
        assert launch.fixed_overhead == 5e-4
        assert launch.watchdog_limit == 3.0
