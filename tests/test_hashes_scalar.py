"""Golden tests: from-scratch MD5/SHA1/SHA256 vs hashlib and RFC vectors."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.hashes import md5_hex, sha1_hex, sha256_hex
from repro.hashes.md5 import md5_digest, md5_digest_to_state, md5_state_to_digest
from repro.hashes.sha1 import sha1_digest, sha1_digest_to_state
from repro.hashes.sha256 import sha256_digest, sha256d_digest

# RFC 1321 appendix A.5 test suite.
MD5_RFC_VECTORS = [
    (b"", "d41d8cd98f00b204e9800998ecf8427e"),
    (b"a", "0cc175b9c0f1b6a831c399e269772661"),
    (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
    (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
    (b"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
    (
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "d174ab98d277d9f5a5611c2c9f419d9f",
    ),
    (
        b"1234567890" * 8,
        "57edf4a22be3c955ac49da2e2107b67a",
    ),
]

# RFC 3174 section 7.3 test vectors.
SHA1_RFC_VECTORS = [
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
    ),
    (b"a" * 1_000_000, "34aa973cd4c4daa4f61eeb2bdbad27316534016f"),
]

# FIPS 180-4 / NIST examples.
SHA256_VECTORS = [
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
]


class TestRFCVectors:
    @pytest.mark.parametrize("message,expected", MD5_RFC_VECTORS)
    def test_md5_rfc1321(self, message, expected):
        assert md5_hex(message) == expected

    @pytest.mark.parametrize("message,expected", SHA1_RFC_VECTORS[:2])
    def test_sha1_rfc3174(self, message, expected):
        assert sha1_hex(message) == expected

    @pytest.mark.slow
    def test_sha1_million_a(self):
        message, expected = SHA1_RFC_VECTORS[2]
        # The scalar path is a reference implementation; hash only a prefix
        # chain via hashlib equivalence instead of the slow full input.
        assert sha1_hex(message[:4096]) == hashlib.sha1(message[:4096]).hexdigest()

    @pytest.mark.parametrize("message,expected", SHA256_VECTORS)
    def test_sha256_fips(self, message, expected):
        assert sha256_hex(message) == expected


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=0, max_size=300))
def test_md5_matches_hashlib(data):
    assert md5_digest(data) == hashlib.md5(data).digest()


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=0, max_size=300))
def test_sha1_matches_hashlib(data):
    assert sha1_digest(data) == hashlib.sha1(data).digest()


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=0, max_size=300))
def test_sha256_matches_hashlib(data):
    assert sha256_digest(data) == hashlib.sha256(data).digest()


class TestPaddingBoundaries:
    """Every length where the padding layout changes blocks."""

    @pytest.mark.parametrize("length", [0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128])
    def test_md5_boundary_lengths(self, length):
        data = bytes(range(256))[:length] * 1
        data = (b"x" * length)[:length]
        assert md5_digest(data) == hashlib.md5(data).digest()

    @pytest.mark.parametrize("length", [0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128])
    def test_sha_boundary_lengths(self, length):
        data = (b"y" * length)[:length]
        assert sha1_digest(data) == hashlib.sha1(data).digest()
        assert sha256_digest(data) == hashlib.sha256(data).digest()


class TestDigestStateRoundTrips:
    def test_md5_state_roundtrip(self):
        digest = md5_digest(b"roundtrip")
        assert md5_state_to_digest(md5_digest_to_state(digest)) == digest

    def test_md5_digest_to_state_rejects_bad_length(self):
        with pytest.raises(ValueError):
            md5_digest_to_state(b"short")

    def test_sha1_digest_to_state_rejects_bad_length(self):
        with pytest.raises(ValueError):
            sha1_digest_to_state(b"short")

    def test_sha256d_is_double_hash(self):
        data = b"bitcoin block header"
        expected = hashlib.sha256(hashlib.sha256(data).digest()).digest()
        assert sha256d_digest(data) == expected
