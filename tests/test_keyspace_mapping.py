"""Tests for the f(id)/next bijections (Figures 1-2, mappings (1) and (4))."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.keyspace import (
    ALNUM_MIXED,
    ALPHA_LOWER,
    Charset,
    KeyMapping,
    KeyOrder,
    index_to_key,
    key_to_index,
    next_key,
)

ABC = Charset("abc", name="abc")


class TestPaperMappings:
    """The two enumerations printed in the paper, verbatim."""

    def test_mapping_1_suffix_fastest(self):
        # [0..8] -> [eps, a, b, c, aa, ab, ac, ba, bb] (paper equation (1))
        expected = ["", "a", "b", "c", "aa", "ab", "ac", "ba", "bb"]
        got = [index_to_key(i, ABC, KeyOrder.SUFFIX_FASTEST) for i in range(9)]
        assert got == expected

    def test_mapping_4_prefix_fastest(self):
        # [0..8] -> [eps, a, b, c, aa, ba, ca, ab, bb] (paper equation (4))
        expected = ["", "a", "b", "c", "aa", "ba", "ca", "ab", "bb"]
        got = [index_to_key(i, ABC, KeyOrder.PREFIX_FASTEST) for i in range(9)]
        assert got == expected

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            index_to_key(-1, ABC)


charsets = st.sampled_from([ABC, ALPHA_LOWER, ALNUM_MIXED, Charset("01")])
orders = st.sampled_from([KeyOrder.SUFFIX_FASTEST, KeyOrder.PREFIX_FASTEST])


class TestBijection:
    @given(charset=charsets, order=orders, index=st.integers(0, 10**12))
    def test_roundtrip_index_key_index(self, charset, order, index):
        key = index_to_key(index, charset, order)
        assert key_to_index(key, charset, order) == index

    @given(charset=charsets, order=orders, start=st.integers(0, 10**9))
    def test_injective_on_a_window(self, charset, order, start):
        keys = {index_to_key(start + i, charset, order) for i in range(50)}
        assert len(keys) == 50

    @given(charset=charsets, order=orders, index=st.integers(0, 10**15))
    def test_enumeration_is_shortest_first(self, charset, order, index):
        assert len(index_to_key(index, charset, order)) <= len(
            index_to_key(index + 1, charset, order)
        )

    def test_huge_index_exact_arithmetic(self):
        # Way beyond uint64: must still round-trip exactly.
        index = 62**25 + 12345678901234567890
        key = index_to_key(index, ALNUM_MIXED)
        assert key_to_index(key, ALNUM_MIXED) == index


class TestNextOperator:
    """Figure 2: next(f(i)) == f(i+1), the cheap incremental step."""

    @given(charset=charsets, order=orders, index=st.integers(0, 10**12))
    def test_next_equals_f_of_succ(self, charset, order, index):
        key = index_to_key(index, charset, order)
        assert next_key(key, charset, order) == index_to_key(index + 1, charset, order)

    def test_full_wraparound_grows_length(self):
        assert next_key("cc", ABC, KeyOrder.SUFFIX_FASTEST) == "aaa"
        assert next_key("cc", ABC, KeyOrder.PREFIX_FASTEST) == "aaa"

    def test_common_case_touches_one_char(self):
        # Suffix order mutates the tail, prefix order mutates the head.
        assert next_key("aaaa", ABC, KeyOrder.SUFFIX_FASTEST) == "aaab"
        assert next_key("aaaa", ABC, KeyOrder.PREFIX_FASTEST) == "baaa"

    def test_prefix_fastest_keeps_suffix_fixed_for_n4_run(self):
        # The reversal kernel's soundness condition: within a run of N**4
        # consecutive ids (aligned, same length), only the first 4 characters
        # change under mapping (4).
        charset = ABC
        n = len(charset)
        mapping = KeyMapping(charset, min_length=6, max_length=6, order=KeyOrder.PREFIX_FASTEST)
        run = n**4
        first = mapping.key_at(0)
        for i in range(1, run):
            key = mapping.key_at(i)
            assert key[4:] == first[4:]
        # The next run differs in the suffix.
        assert mapping.key_at(run)[4:] != first[4:]


class TestKeyMappingWindow:
    def test_size_matches_formula(self):
        m = KeyMapping(ALPHA_LOWER, 1, 4)
        assert m.size == 26 + 26**2 + 26**3 + 26**4

    def test_window_reindexes_from_zero(self):
        m = KeyMapping(ABC, min_length=2, max_length=3)
        assert m.key_at(0) == "aa"
        assert m.key_at(8) == "cc"
        assert m.key_at(9) == "aaa"

    def test_window_equals_global_when_min_zero(self):
        m = KeyMapping(ABC, 0, 5)
        for i in [0, 1, 5, 17, 100, 300]:
            assert m.key_at(i) == index_to_key(i, ABC)

    @given(
        order=orders,
        min_length=st.integers(0, 3),
        span=st.integers(0, 2),
        data=st.data(),
    )
    def test_key_at_and_index_of_invert(self, order, min_length, span, data):
        m = KeyMapping(ABC, min_length, min_length + span, order)
        index = data.draw(st.integers(0, m.size - 1))
        assert m.index_of(m.key_at(index)) == index

    def test_index_of_rejects_out_of_window(self):
        m = KeyMapping(ABC, 2, 3)
        with pytest.raises(ValueError, match="outside window"):
            m.index_of("a")
        with pytest.raises(ValueError, match="outside window"):
            m.index_of("aaaa")

    def test_key_at_bounds(self):
        m = KeyMapping(ABC, 1, 2)
        with pytest.raises(IndexError):
            m.key_at(m.size)
        with pytest.raises(IndexError):
            m.key_at(-1)

    def test_next_of_none_at_end(self):
        m = KeyMapping(ABC, 1, 2)
        assert m.next_of("cc") is None
        assert m.next_of("c") == "aa"

    @settings(max_examples=25)
    @given(order=orders, start=st.integers(0, 30))
    def test_iter_keys_matches_key_at(self, order, start):
        m = KeyMapping(ABC, min_length=1, max_length=4, order=order)
        stop = min(start + 20, m.size)
        assert list(m.iter_keys(start, stop)) == [m.key_at(i) for i in range(start, stop)]

    def test_iter_keys_empty_range(self):
        m = KeyMapping(ABC, 1, 2)
        assert list(m.iter_keys(5, 5)) == []

    def test_stratum(self):
        m = KeyMapping(ABC, 1, 3)
        assert m.stratum(0) == (1, 0)
        assert m.stratum(3) == (2, 0)
        assert m.stratum(11) == (2, 8)
        assert m.stratum(12) == (3, 0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            KeyMapping(ABC, -1, 2)
        with pytest.raises(ValueError):
            KeyMapping(ABC, 3, 2)
