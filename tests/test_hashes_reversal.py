"""Tests for the digest-reversal and early-exit kernels (Section V)."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashes import (
    Endian,
    MD5ReversedTarget,
    SHA1EarlyTarget,
    md5_reverse_tail,
    md5_search_block,
    pack_single_block,
    sha1_search_block,
)
from repro.hashes.md5 import MD5_INIT, md5_compress, md5_step
from repro.hashes.padding import pad_message
from repro.hashes.reversal import (
    md5_search_block_naive,
    md5_search_block_no_early_exit,
    md5_unstep,
    sha1_search_block_naive,
)


def packed_block(message: bytes, endian: Endian) -> list[int]:
    return pad_message(message, endian)[0]


def make_word0_batch(template: list[int], batch: int, planted_at: int | None, planted_word: int, seed=0):
    """Random word-0 candidates with an optional planted true value."""
    rng = np.random.default_rng(seed)
    words = rng.integers(0, 2**32, size=batch, dtype=np.uint32)
    if planted_at is not None:
        words[planted_at] = planted_word
    return words


class TestMD5Unstep:
    @given(step=st.integers(0, 63), seed=st.integers(0, 2**31))
    @settings(max_examples=60)
    def test_unstep_inverts_step(self, step, seed):
        rng = np.random.default_rng(seed)
        state = tuple(int(x) for x in rng.integers(0, 2**32, size=4))
        block = [int(x) for x in rng.integers(0, 2**32, size=16)]
        after = md5_step(step, state, block)
        from repro.hashes.md5 import md5_message_index

        assert md5_unstep(step, after, block[md5_message_index(step)]) == state


class TestMD5ReverseTail:
    def test_reverse_meets_forward_at_step_49(self):
        message = b"meetinmiddle"
        template = packed_block(message, Endian.LITTLE)
        digest = hashlib.md5(message).digest()
        # Forward: run 49 steps from the init state.
        state = MD5_INIT
        for step in range(49):
            state = md5_step(step, state, template)
        # Backward: revert 15 steps from the digest.
        assert md5_reverse_tail(digest, template) == state

    def test_reversal_never_reads_word0(self):
        message = b"word0agnostic"
        template = packed_block(message, Endian.LITTLE)
        digest = hashlib.md5(message).digest()
        poisoned = list(template)
        poisoned[0] = 0xDEADBEEF  # reversal must not care
        assert md5_reverse_tail(digest, poisoned) == md5_reverse_tail(digest, template)

    def test_step_count_bounds(self):
        template = packed_block(b"x", Endian.LITTLE)
        digest = hashlib.md5(b"x").digest()
        with pytest.raises(ValueError):
            md5_reverse_tail(digest, template, steps=16)
        with pytest.raises(ValueError):
            md5_reverse_tail(digest, template, steps=0)

    def test_template_must_have_16_words(self):
        with pytest.raises(ValueError):
            MD5ReversedTarget.from_digest(hashlib.md5(b"q").digest(), [0] * 15)


class TestMD5SearchBlock:
    """The optimized kernel finds exactly the true preimages."""

    def test_finds_planted_key(self):
        message = b"Pa5swrd!"
        template = packed_block(message, Endian.LITTLE)
        digest = hashlib.md5(message).digest()
        target = MD5ReversedTarget.from_digest(digest, template)
        words = make_word0_batch(template, 4096, planted_at=1234, planted_word=template[0])
        assert md5_search_block(words, target).tolist() == [1234]

    def test_no_false_positives_on_random_batch(self):
        message = b"unfindable-key"
        template = packed_block(message, Endian.LITTLE)
        target = MD5ReversedTarget.from_digest(hashlib.md5(b"other").digest(), template)
        words = make_word0_batch(template, 8192, planted_at=None, planted_word=0)
        assert md5_search_block(words, target).size == 0

    def test_finds_multiple_planted_copies(self):
        message = b"dup"
        template = packed_block(message, Endian.LITTLE)
        digest = hashlib.md5(message).digest()
        target = MD5ReversedTarget.from_digest(digest, template)
        words = make_word0_batch(template, 1000, planted_at=7, planted_word=template[0])
        words[900] = template[0]
        assert md5_search_block(words, target).tolist() == [7, 900]

    @given(seed=st.integers(0, 2**31), batch=st.integers(1, 512))
    @settings(max_examples=15, deadline=None)
    def test_agrees_with_naive_kernel(self, seed, batch):
        message = b"agreement"
        template = packed_block(message, Endian.LITTLE)
        digest = hashlib.md5(message).digest()
        target = MD5ReversedTarget.from_digest(digest, template)
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2**32, size=batch, dtype=np.uint32)
        if seed % 2:
            words[seed % batch] = template[0]
        expected = md5_search_block_naive(words, template, digest)
        assert md5_search_block(words, target).tolist() == expected.tolist()
        assert (
            md5_search_block_no_early_exit(words, target).tolist() == expected.tolist()
        )

    def test_input_validation(self):
        template = packed_block(b"v", Endian.LITTLE)
        target = MD5ReversedTarget.from_digest(hashlib.md5(b"v").digest(), template)
        with pytest.raises(ValueError):
            md5_search_block(np.zeros((2, 2), dtype=np.uint32), target)
        with pytest.raises(TypeError):
            md5_search_block(np.zeros(4, dtype=np.int64), target)

    def test_salted_target(self):
        # Salted search: digest of salt+key; the kernel sees it as just a
        # different template with the salt occupying fixed byte positions.
        salt = b"NaCl-"
        key = b"hunter2zzz"  # 10 chars; salt+key = 15 bytes, word 0 varies over key[0:4]?
        message = key + salt  # suffix salting keeps key bytes at the front
        template = packed_block(message, Endian.LITTLE)
        digest = hashlib.md5(message).digest()
        target = MD5ReversedTarget.from_digest(digest, template)
        words = make_word0_batch(template, 256, planted_at=99, planted_word=template[0])
        assert md5_search_block(words, target).tolist() == [99]


class TestSHA1SearchBlock:
    def test_finds_planted_key(self):
        message = b"sha1-secret"
        template = packed_block(message, Endian.BIG)
        digest = hashlib.sha1(message).digest()
        target = SHA1EarlyTarget.from_digest(digest, template)
        words = make_word0_batch(template, 4096, planted_at=321, planted_word=template[0])
        assert sha1_search_block(words, target).tolist() == [321]

    def test_no_false_positives(self):
        template = packed_block(b"real", Endian.BIG)
        target = SHA1EarlyTarget.from_digest(hashlib.sha1(b"decoy").digest(), template)
        words = make_word0_batch(template, 8192, planted_at=None, planted_word=0)
        assert sha1_search_block(words, target).size == 0

    @given(seed=st.integers(0, 2**31), batch=st.integers(1, 256))
    @settings(max_examples=10, deadline=None)
    def test_agrees_with_naive_kernel(self, seed, batch):
        message = b"sha1agree"
        template = packed_block(message, Endian.BIG)
        digest = hashlib.sha1(message).digest()
        target = SHA1EarlyTarget.from_digest(digest, template)
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2**32, size=batch, dtype=np.uint32)
        if seed % 2:
            words[seed % batch] = template[0]
        expected = sha1_search_block_naive(words, template, digest)
        assert sha1_search_block(words, target).tolist() == expected.tolist()

    def test_step_outputs_recovered_from_digest(self):
        # The five known late-step outputs let the kernel stop at step 76.
        message = b"known-tail"
        template = packed_block(message, Endian.BIG)
        digest = hashlib.sha1(message).digest()
        target = SHA1EarlyTarget.from_digest(digest, template)
        # Recompute the step outputs forward and compare.
        from repro.hashes.sha1 import SHA1_INIT, sha1_expand_schedule, sha1_step

        w = sha1_expand_schedule(template)
        state = SHA1_INIT
        outputs = {}
        for step in range(80):
            state = sha1_step(step, state, w)
            outputs[step] = state[0]
        assert target.step_outputs == tuple(outputs[i] for i in (75, 76, 77, 78, 79))

    def test_template_must_have_16_words(self):
        with pytest.raises(ValueError):
            SHA1EarlyTarget.from_digest(hashlib.sha1(b"q").digest(), [0] * 3)


class TestCrossCheckWithCompress:
    def test_reversed_target_consistent_with_md5_compress(self):
        message = b"consistency"
        template = packed_block(message, Endian.LITTLE)
        digest = hashlib.md5(message).digest()
        target = MD5ReversedTarget.from_digest(digest, template)
        assert md5_compress(MD5_INIT, template) == tuple(
            int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
        )
        # Planting the true word 0 must pass both the filter and the verify.
        words = np.array([template[0]], dtype=np.uint32)
        assert md5_search_block(words, target).tolist() == [0]
