"""Tests for the wire protocol and the <1 Kbyte budget (Section II)."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.protocol import (
    GatherMessage,
    HeartbeatMessage,
    MESSAGE_BUDGET,
    ScatterMessage,
    decode_any,
)
from repro.keyspace import ALNUM_MIXED, ASCII_PRINTABLE, Interval


def scatter(**kw):
    defaults = dict(
        interval=Interval(10**20, 10**20 + 10**9),
        digest=hashlib.md5(b"t").digest(),
        charset=ALNUM_MIXED.symbols,
        min_length=1,
        max_length=8,
    )
    defaults.update(kw)
    return ScatterMessage(**defaults)


class TestScatterMessage:
    def test_roundtrip(self):
        msg = scatter(prefix=b"s:", suffix=b"::pepper")
        clone = ScatterMessage.decode(msg.encode())
        assert clone == msg

    def test_budget_holds_for_worst_realistic_case(self):
        # Largest charset, longest salts we support, SHA1 digest, huge ids.
        msg = scatter(
            interval=Interval(0, 2**127),
            digest=hashlib.sha1(b"x").digest(),
            charset=ASCII_PRINTABLE.symbols,
            prefix=b"p" * 20,
            suffix=b"s" * 20,
        )
        encoded = msg.encode()
        assert len(encoded) < MESSAGE_BUDGET
        assert len(encoded) < 256  # in fact far below the claim

    def test_id_overflow_rejected(self):
        with pytest.raises(ValueError, match="128-bit"):
            scatter(interval=Interval(0, 2**130)).encode()

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError, match="not a scatter"):
            ScatterMessage.decode(b"XXXX" + b"\x00" * 60)

    @given(
        start=st.integers(0, 2**100),
        size=st.integers(0, 2**40),
        min_len=st.integers(0, 20),
        span=st.integers(0, 10),
    )
    @settings(max_examples=40)
    def test_property_roundtrip(self, start, size, min_len, span):
        msg = scatter(
            interval=Interval(start, start + size),
            min_length=min_len,
            max_length=min_len + span,
        )
        assert ScatterMessage.decode(msg.encode()) == msg


class TestGatherMessage:
    def test_roundtrip_with_matches(self):
        msg = GatherMessage(
            interval=Interval(100, 200),
            tested=100,
            elapsed_us=123_456,
            matches=((150, "S3cret9"), (199, "zzz")),
        )
        assert GatherMessage.decode(msg.encode()) == msg

    def test_empty_matches(self):
        msg = GatherMessage(Interval(0, 10), 10, 1)
        clone = GatherMessage.decode(msg.encode())
        assert clone.matches == ()

    def test_budget(self):
        msg = GatherMessage(
            Interval(0, 2**100), 2**100, 2**63 - 1, tuple((i, "k" * 20) for i in range(8))
        )
        assert len(msg.encode()) < MESSAGE_BUDGET

    def test_pathological_match_count_rejected(self):
        many = tuple((i, "k" * 20) for i in range(40))
        with pytest.raises(ValueError, match="budget"):
            GatherMessage(Interval(0, 10), 10, 1, many).encode()


class TestHeartbeat:
    def test_roundtrip(self):
        msg = HeartbeatMessage("node-C", True, 71_000_000)
        assert HeartbeatMessage.decode(msg.encode()) == msg

    def test_budget(self):
        assert len(HeartbeatMessage("x" * 200, False, 0).encode()) < MESSAGE_BUDGET


class TestDecodeAny:
    def test_dispatch(self):
        s = scatter()
        g = GatherMessage(Interval(0, 1), 1, 1)
        h = HeartbeatMessage("n", False, 1)
        assert decode_any(s.encode()) == s
        assert decode_any(g.encode()) == g
        assert decode_any(h.encode()) == h

    def test_unknown_magic(self):
        with pytest.raises(ValueError, match="unknown message magic"):
            decode_any(b"????rest")
