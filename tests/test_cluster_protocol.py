"""Tests for the wire protocol and the <1 Kbyte budget (Section II)."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.protocol import (
    ControlMessage,
    EvictMessage,
    GatherMessage,
    HeartbeatMessage,
    JoinMessage,
    LeaveMessage,
    MESSAGE_BUDGET,
    STEAL_GRANT_MAX_INTERVALS,
    ScatterMessage,
    StealGrantMessage,
    StealRequestMessage,
    WelcomeMessage,
    decode_any,
)
from repro.keyspace import ALNUM_MIXED, ASCII_PRINTABLE, Interval

#: latin-1 safe text for name/reason fields in property tests.
_names = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=255), max_size=100
)


def scatter(**kw):
    defaults = dict(
        interval=Interval(10**20, 10**20 + 10**9),
        digest=hashlib.md5(b"t").digest(),
        charset=ALNUM_MIXED.symbols,
        min_length=1,
        max_length=8,
    )
    defaults.update(kw)
    return ScatterMessage(**defaults)


class TestScatterMessage:
    def test_roundtrip(self):
        msg = scatter(prefix=b"s:", suffix=b"::pepper")
        clone = ScatterMessage.decode(msg.encode())
        assert clone == msg

    def test_budget_holds_for_worst_realistic_case(self):
        # Largest charset, longest salts we support, SHA1 digest, huge ids.
        msg = scatter(
            interval=Interval(0, 2**127),
            digest=hashlib.sha1(b"x").digest(),
            charset=ASCII_PRINTABLE.symbols,
            prefix=b"p" * 20,
            suffix=b"s" * 20,
        )
        encoded = msg.encode()
        assert len(encoded) < MESSAGE_BUDGET
        assert len(encoded) < 256  # in fact far below the claim

    def test_id_overflow_rejected(self):
        with pytest.raises(ValueError, match="128-bit"):
            scatter(interval=Interval(0, 2**130)).encode()

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError, match="not a scatter"):
            ScatterMessage.decode(b"XXXX" + b"\x00" * 60)

    @given(
        start=st.integers(0, 2**100),
        size=st.integers(0, 2**40),
        min_len=st.integers(0, 20),
        span=st.integers(0, 10),
    )
    @settings(max_examples=40)
    def test_property_roundtrip(self, start, size, min_len, span):
        msg = scatter(
            interval=Interval(start, start + size),
            min_length=min_len,
            max_length=min_len + span,
        )
        assert ScatterMessage.decode(msg.encode()) == msg


class TestGatherMessage:
    def test_roundtrip_with_matches(self):
        msg = GatherMessage(
            interval=Interval(100, 200),
            tested=100,
            elapsed_us=123_456,
            matches=((150, "S3cret9"), (199, "zzz")),
        )
        assert GatherMessage.decode(msg.encode()) == msg

    def test_empty_matches(self):
        msg = GatherMessage(Interval(0, 10), 10, 1)
        clone = GatherMessage.decode(msg.encode())
        assert clone.matches == ()

    def test_budget(self):
        msg = GatherMessage(
            Interval(0, 2**100), 2**100, 2**63 - 1, tuple((i, "k" * 20) for i in range(8))
        )
        assert len(msg.encode()) < MESSAGE_BUDGET

    def test_pathological_match_count_rejected(self):
        many = tuple((i, "k" * 20) for i in range(40))
        with pytest.raises(ValueError, match="budget"):
            GatherMessage(Interval(0, 10), 10, 1, many).encode()


class TestHeartbeat:
    def test_roundtrip(self):
        msg = HeartbeatMessage("node-C", True, 71_000_000)
        assert HeartbeatMessage.decode(msg.encode()) == msg

    def test_budget(self):
        assert len(HeartbeatMessage("x" * 200, False, 0).encode()) < MESSAGE_BUDGET


class TestControlMessage:
    def test_roundtrip_every_command(self):
        for command in ControlMessage.COMMANDS:
            msg = ControlMessage(command, reason="match found")
            assert ControlMessage.decode(msg.encode()) == msg

    def test_empty_reason_roundtrip(self):
        msg = ControlMessage("shutdown")
        assert decode_any(msg.encode()) == msg

    def test_unknown_command_rejected_at_encode(self):
        with pytest.raises(ValueError, match="control command"):
            ControlMessage("reboot").encode()

    def test_budget(self):
        msg = ControlMessage("cancel", reason="r" * 200)
        assert len(msg.encode()) < MESSAGE_BUDGET

    @given(
        command=st.sampled_from(ControlMessage.COMMANDS),
        reason=st.text(
            alphabet=st.characters(min_codepoint=1, max_codepoint=255), max_size=120
        ),
    )
    @settings(max_examples=40)
    def test_property_roundtrip(self, command, reason):
        msg = ControlMessage(command, reason=reason)
        assert decode_any(msg.encode()) == msg


class TestJoinMessage:
    def test_roundtrip(self):
        msg = JoinMessage("node-D", rate_keys_per_s=71_000_000, backend="process")
        assert JoinMessage.decode(msg.encode()) == msg
        assert decode_any(msg.encode()) == msg

    def test_defaults_roundtrip(self):
        msg = JoinMessage("w")
        clone = JoinMessage.decode(msg.encode())
        assert clone == msg and clone.rate_keys_per_s == 0 and clone.backend == ""

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError, match="not a join"):
            JoinMessage.decode(b"XXXX" + b"\x00" * 20)

    def test_budget(self):
        msg = JoinMessage("n" * 200, rate_keys_per_s=2**63, backend="b" * 40)
        assert len(msg.encode()) < MESSAGE_BUDGET

    @given(node=_names, rate=st.integers(0, 2**64 - 1), backend=_names)
    @settings(max_examples=40)
    def test_property_roundtrip(self, node, rate, backend):
        msg = JoinMessage(node, rate, backend)
        assert decode_any(msg.encode()) == msg


class TestWelcomeMessage:
    def test_roundtrip(self):
        msg = WelcomeMessage(master="cluster-m0", members=5)
        assert WelcomeMessage.decode(msg.encode()) == msg
        assert decode_any(msg.encode()) == msg

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError, match="not a welcome"):
            WelcomeMessage.decode(b"XXXX" + b"\x00" * 20)

    @given(master=_names, members=st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_property_roundtrip(self, master, members):
        msg = WelcomeMessage(master, members)
        assert decode_any(msg.encode()) == msg


class TestLeaveMessage:
    def test_roundtrip(self):
        msg = LeaveMessage("node-B", reason="operator drain")
        assert LeaveMessage.decode(msg.encode()) == msg
        assert decode_any(msg.encode()) == msg

    def test_empty_reason(self):
        msg = LeaveMessage("w")
        assert LeaveMessage.decode(msg.encode()).reason == ""

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError, match="not a leave"):
            LeaveMessage.decode(b"XXXX" + b"\x00" * 20)

    @given(node=_names, reason=_names)
    @settings(max_examples=40)
    def test_property_roundtrip(self, node, reason):
        msg = LeaveMessage(node, reason)
        assert decode_any(msg.encode()) == msg


class TestEvictMessage:
    def test_roundtrip(self):
        msg = EvictMessage("node-B", reason="3 deaths")
        assert EvictMessage.decode(msg.encode()) == msg
        assert decode_any(msg.encode()) == msg

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError, match="not an evict"):
            EvictMessage.decode(b"XXXX" + b"\x00" * 20)

    def test_budget(self):
        msg = EvictMessage("n" * 120, reason="r" * 120)
        assert len(msg.encode()) < MESSAGE_BUDGET

    @given(node=_names, reason=_names)
    @settings(max_examples=40)
    def test_property_roundtrip(self, node, reason):
        msg = EvictMessage(node, reason)
        assert decode_any(msg.encode()) == msg


class TestStealMessages:
    def test_request_roundtrip(self):
        msg = StealRequestMessage("m1", budget=12)
        assert StealRequestMessage.decode(msg.encode()) == msg
        assert decode_any(msg.encode()) == msg

    def test_request_half_convention(self):
        msg = StealRequestMessage("m1")  # budget 0 = "half of yours"
        assert StealRequestMessage.decode(msg.encode()).budget == 0

    def test_request_wrong_magic_rejected(self):
        with pytest.raises(ValueError, match="not a steal request"):
            StealRequestMessage.decode(b"XXXX" + b"\x00" * 24)

    def test_grant_roundtrip(self):
        spans = (Interval(10**20, 10**20 + 500), Interval(7, 9))
        msg = StealGrantMessage("m0", intervals=spans)
        clone = StealGrantMessage.decode(msg.encode())
        assert clone == msg and clone.intervals == spans

    def test_grant_empty_means_denied(self):
        msg = StealGrantMessage("m0")
        assert decode_any(msg.encode()) == msg

    def test_grant_wrong_magic_rejected(self):
        with pytest.raises(ValueError, match="not a steal grant"):
            StealGrantMessage.decode(b"XXXX" + b"\x00" * 24)

    def test_grant_budget_at_max_spans(self):
        spans = tuple(
            Interval(2**120 + i * 10, 2**120 + i * 10 + 5)
            for i in range(STEAL_GRANT_MAX_INTERVALS)
        )
        encoded = StealGrantMessage("victim-master", spans).encode()
        assert len(encoded) < MESSAGE_BUDGET

    def test_grant_over_max_spans_rejected(self):
        spans = tuple(
            Interval(i * 10, i * 10 + 5)
            for i in range(STEAL_GRANT_MAX_INTERVALS + 1)
        )
        with pytest.raises(ValueError, match="span budget"):
            StealGrantMessage("v", spans).encode()

    @given(
        victim=_names,
        raw=st.lists(
            st.tuples(st.integers(0, 2**100), st.integers(0, 2**30)),
            max_size=STEAL_GRANT_MAX_INTERVALS,
        ),
    )
    @settings(max_examples=40)
    def test_grant_property_roundtrip(self, victim, raw):
        spans = tuple(Interval(start, start + size) for start, size in raw)
        msg = StealGrantMessage(victim, spans)
        assert decode_any(msg.encode()) == msg


class TestDecodeAny:
    def test_dispatch(self):
        s = scatter()
        g = GatherMessage(Interval(0, 1), 1, 1)
        h = HeartbeatMessage("n", False, 1)
        c = ControlMessage("cancel", reason="found")
        assert decode_any(s.encode()) == s
        assert decode_any(g.encode()) == g
        assert decode_any(h.encode()) == h
        assert decode_any(c.encode()) == c

    def test_unknown_magic(self):
        with pytest.raises(ValueError, match="unknown message magic"):
            decode_any(b"????rest")


class TestMalformedBytes:
    """decode_any must answer garbage with ValueError, never struct.error."""

    def messages(self):
        return [
            scatter(prefix=b"s:", suffix=b"::p"),
            GatherMessage(
                Interval(100, 200), 100, 123, ((150, "S3cret9"), (199, "zzz"))
            ),
            HeartbeatMessage("node-C", True, 71_000_000),
            ControlMessage("cancel", reason="stop_on_first fired"),
            JoinMessage("node-D", 71_000_000, "process"),
            WelcomeMessage("cluster-m0", 4),
            LeaveMessage("node-B", "operator drain"),
            EvictMessage("node-B", "3 deaths"),
            StealRequestMessage("m1", 8),
            StealGrantMessage("m0", (Interval(3, 9), Interval(2**90, 2**90 + 7))),
        ]

    def test_every_truncation_raises_value_error(self):
        for message in self.messages():
            encoded = message.encode()
            for cut in range(len(encoded)):
                with pytest.raises(ValueError):
                    decode_any(encoded[:cut])

    def test_short_heartbeat_is_not_silently_misdecoded(self):
        # A truncated node name used to decode to a *different* valid
        # message; now it is a loud error.
        encoded = HeartbeatMessage("node-with-a-long-name", False, 9).encode()
        with pytest.raises(ValueError, match="node name"):
            HeartbeatMessage.decode(encoded[:-4])

    @given(noise=st.binary(min_size=0, max_size=64))
    @settings(max_examples=60)
    def test_garbage_after_valid_magic_never_escapes_value_error(self, noise):
        for magic in (
            b"XKS\x01", b"XKS\x02", b"XKS\x03", b"XKS\x04", b"XKS\x05",
            b"XKS\x06", b"XKS\x07", b"XKS\x08", b"XKS\x09", b"XKS\x0a",
        ):
            try:
                decode_any(magic + noise)
            except ValueError:
                pass  # the only acceptable failure mode

    @given(data=st.binary(min_size=0, max_size=64))
    @settings(max_examples=60)
    def test_arbitrary_bytes_never_escape_value_error(self, data):
        try:
            decode_any(data)
        except ValueError:
            pass


class TestHeartbeatProperties:
    @given(
        node=st.text(
            alphabet=st.characters(min_codepoint=1, max_codepoint=255), max_size=100
        ),
        busy=st.booleans(),
        rate=st.integers(0, 2**64 - 1),
    )
    @settings(max_examples=60)
    def test_property_roundtrip(self, node, busy, rate):
        msg = HeartbeatMessage(node, busy, rate)
        clone = decode_any(msg.encode())
        assert clone == msg

    def test_empty_node_roundtrip(self):
        msg = HeartbeatMessage("", False, 0)
        assert HeartbeatMessage.decode(msg.encode()) == msg
