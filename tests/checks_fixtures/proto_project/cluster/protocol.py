"""Fixture protocol module with a deliberately asymmetric message."""

_MAGIC_GOOD = b"FIX\x01"
_MAGIC_BROKEN = b"FIX\x02"


class GoodMessage:
    def encode(self):
        return _MAGIC_GOOD

    @classmethod
    def decode(cls, payload):
        return cls()


class BrokenMessage:  # flagged: no decode arm, not dispatched
    def encode(self):
        return _MAGIC_BROKEN


def decode_any(payload):
    if payload.startswith(_MAGIC_GOOD):
        return GoodMessage.decode(payload)
    raise ValueError("unknown message magic")
