"""Fixture: a metric name that is not in the MetricNames registry."""


class Worker:
    def __init__(self, recorder):
        self.recorder = recorder

    def run(self):
        self.recorder.counter("totally.made.up", 1)  # flagged
        self.recorder.event("another.rogue.name", detail="x")  # flagged
