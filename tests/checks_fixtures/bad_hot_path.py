"""Fixture: allocations inside a hot ``*_into`` kernel."""


def fake_compress_batch_into(blocks, out):
    staging = bytes(64)  # flagged: bytes() allocates
    collected = [b for b in blocks]  # flagged: comprehension
    for block in collected:
        out.append(block + len(staging))  # flagged: .append grows
    return out


def cold_helper(blocks):
    # Not a hot function: the same constructs are fine here.
    return [b * 2 for b in blocks]
