"""Fixture consumer referencing only one of the registered names."""

from .obs.schema import MetricNames


def run(recorder):
    recorder.counter(MetricNames.USED, 1)
