"""Fixture registry with one dead metric name."""


class MetricNames:
    USED = "fixture.used"
    DEAD = "fixture.dead"  # flagged: registered but never referenced
