"""Fixture: an api wire module with a broken and an untested registry kind."""


def _validate_good(document):
    return []


def _validate_orphan(document):
    return []


REQUEST_VALIDATORS = {
    "good": _validate_good,
    "broken": _validate_missing,  # noqa: F821 - deliberately undefined
}

RESPONSE_VALIDATORS = {
    "orphan": _validate_orphan,  # defined, but no test ever names it
}
