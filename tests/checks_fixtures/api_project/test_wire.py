"""Fixture test module: covers kind 'good' only."""


def test_good_round_trip():
    assert "good" == "good"
