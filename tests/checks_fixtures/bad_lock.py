"""Fixture: deliberate lock-discipline violations (see test_checks.py)."""

import threading


class LeakyRegistry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}
        self._hits = 0

    def put(self, key, value):
        with self._lock:
            self._items[key] = value
            self._hits += 1

    def size(self):  # read without the lock: flagged
        return len(self._items)

    def drop(self, key):  # mutating call without the lock: flagged
        self._items.pop(key, None)

    def bump(self):  # write without the lock: flagged
        self._hits += 1

    def snapshot(self):  # correctly guarded: not flagged
        with self._lock:
            return dict(self._items)
