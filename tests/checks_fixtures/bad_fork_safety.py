"""Fixture: unpicklable state on a process-boundary payload."""

import threading
from dataclasses import dataclass, field


@dataclass
class WorkSpan:
    units: tuple = ()
    guard: threading.Lock = field(default_factory=threading.Lock)  # flagged
    handle = open  # flagged: file factory smuggled onto the payload


def dispatch(pool, span):
    pool.submit(lambda: span)  # flagged: lambda cannot cross processes

    def run_one():
        return span

    pool.submit(run_one)  # flagged: nested function closure
