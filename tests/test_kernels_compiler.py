"""Tests for the compiler lowering model (Tables IV-VI methodology)."""

import pytest

from repro.kernels import InstructionClass, lower_mix
from repro.kernels.compiler import CC_1X, CC_2X, CC_30, CC_35, CompilerModel, RotateLowering
from repro.kernels.isa import SourceMix, SourceOp
from repro.kernels.trace import trace_md5_compress, trace_md5_steps
from repro.kernels.variants import (
    HashAlgorithm,
    KernelVariant,
    PAPER_TABLE_IV,
    PAPER_TABLE_V,
    PAPER_TABLE_VI,
    get_kernel,
    kernel_catalog,
    traced_mixes,
)


def single_rotate(amount: int) -> SourceMix:
    mix = SourceMix()
    mix.bump_rotate(amount)
    return mix


class TestRotateLowering:
    def test_cc1x_rotate_is_two_shifts_plus_add(self):
        out = CC_1X.lower(single_rotate(7))
        assert out[InstructionClass.SHIFT] == 2
        assert out[InstructionClass.IADD] == 1
        assert out[InstructionClass.IMAD] == 0

    def test_cc2x_rotate_is_shift_plus_imad(self):
        out = CC_2X.lower(single_rotate(7))
        assert out[InstructionClass.SHIFT] == 1
        assert out[InstructionClass.IMAD] == 1
        assert out[InstructionClass.IADD] == 0  # IMAD implicitly adds

    def test_cc30_byte_perm_for_16_bit_only(self):
        assert CC_30.lower(single_rotate(16))[InstructionClass.PRMT] == 1
        out = CC_30.lower(single_rotate(15))
        assert out[InstructionClass.PRMT] == 0
        assert out[InstructionClass.SHIFT] == 1

    def test_cc35_funnel_shift(self):
        out = CC_35.lower(single_rotate(22))
        assert out[InstructionClass.FUNNEL] == 1
        assert out.total == 1

    def test_not_merging(self):
        mix = SourceMix()
        mix.bump(SourceOp.NOT, 5)
        mix.bump(SourceOp.LOGICAL, 3)
        assert CC_2X.lower(mix)[InstructionClass.LOP] == 3
        keep_not = CompilerModel("test", RotateLowering.SHIFT_MAD, merges_not=False)
        assert keep_not.lower(mix)[InstructionClass.LOP] == 8

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown compute-capability"):
            lower_mix(SourceMix(), "9.9")


class TestLoweredMD5AgainstPaper:
    """Our trace+lowering vs the paper's hand counts (documented deltas)."""

    def test_naive_shift_columns_exact(self):
        mixes = traced_mixes(HashAlgorithm.MD5, KernelVariant.NAIVE)
        # Table IV: SHR/SHL 128 on 1.x; 64 + 64 IMAD on 2.x.
        assert mixes["1.x"][InstructionClass.SHIFT] == 128
        assert mixes["2.x"][InstructionClass.SHIFT] == 64
        assert mixes["2.x"][InstructionClass.IMAD] == 64

    def test_optimized_prmt_exact(self):
        mixes = traced_mixes(HashAlgorithm.MD5, KernelVariant.BYTE_PERM)
        # Table VI: 43 SHR/SHL + 43 IMAD + 3 PRMT on CC 3.0.
        assert mixes["3.0"][InstructionClass.SHIFT] == 43
        assert mixes["3.0"][InstructionClass.IMAD] == 43
        assert mixes["3.0"][InstructionClass.PRMT] == 3

    def test_optimized_2x_shift_exact(self):
        mixes = traced_mixes(HashAlgorithm.MD5, KernelVariant.OPTIMIZED)
        # Table V: 46 + 46 on CC 2.x (one rotate per forward step).
        assert mixes["2.x"][InstructionClass.SHIFT] == 46
        assert mixes["2.x"][InstructionClass.IMAD] == 46

    def test_iadd_within_tolerance_of_paper(self):
        # The paper's compiler folded more constants than our model; the
        # deltas stay bounded (documented in EXPERIMENTS.md).
        for variant, table in [
            (KernelVariant.NAIVE, PAPER_TABLE_IV),
            (KernelVariant.BYTE_PERM, PAPER_TABLE_VI),
        ]:
            mixes = traced_mixes(HashAlgorithm.MD5, variant)
            for family in ("1.x", "2.x", "3.0"):
                ours = mixes[family][InstructionClass.IADD]
                paper = table[family][InstructionClass.IADD]
                assert abs(ours - paper) / paper < 0.25

    def test_30_equals_2x_without_byte_perm(self):
        mixes = traced_mixes(HashAlgorithm.MD5, KernelVariant.OPTIMIZED)
        assert mixes["3.0"] == mixes["2.x"]


class TestKernelCatalog:
    def test_all_combinations_present(self):
        catalog = kernel_catalog()
        assert len(catalog) == len(HashAlgorithm) * len(KernelVariant)

    def test_md5_paper_kernels_use_table_values(self):
        spec = get_kernel(HashAlgorithm.MD5, KernelVariant.BYTE_PERM)
        assert spec.source == "paper"
        assert spec.mix_for("3.0") == PAPER_TABLE_VI["3.0"]
        assert spec.mix_for("2.x") == PAPER_TABLE_V["2.x"]

    def test_md5_reversed_is_traced(self):
        assert get_kernel(HashAlgorithm.MD5, KernelVariant.REVERSED).source == "traced"

    def test_sha1_kernels_are_traced(self):
        spec = get_kernel(HashAlgorithm.SHA1, KernelVariant.OPTIMIZED)
        assert spec.source == "traced"
        assert spec.mix_for("1.x").total > 0

    def test_paper_35_extrapolation_uses_funnel(self):
        spec = get_kernel(HashAlgorithm.MD5, KernelVariant.BYTE_PERM)
        mix = spec.mix_for("3.5")
        assert mix[InstructionClass.FUNNEL] == 46
        assert mix[InstructionClass.SHIFT] == 0

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="no mix"):
            get_kernel(HashAlgorithm.MD5).mix_for("4.0")

    def test_variant_ordering_fewer_instructions_when_optimized(self):
        for family in ("1.x", "2.x", "3.0"):
            naive = get_kernel(HashAlgorithm.MD5, KernelVariant.NAIVE).mix_for(family)
            opt = get_kernel(HashAlgorithm.MD5, KernelVariant.BYTE_PERM).mix_for(family)
            assert opt.total < naive.total

    def test_paper_speedup_claim_1_25x(self):
        # Section V: the reversal trick "achieves a speedup of about 1.25".
        for family in ("1.x", "2.x"):
            naive = get_kernel(HashAlgorithm.MD5, KernelVariant.NAIVE).mix_for(family)
            opt = get_kernel(HashAlgorithm.MD5, KernelVariant.OPTIMIZED).mix_for(family)
            speedup = naive.total / opt.total
            assert 1.2 < speedup < 1.5

    def test_kernel_names(self):
        assert get_kernel(HashAlgorithm.SHA1, KernelVariant.NAIVE).name == "sha1-naive"
