"""Tests for the analytical throughput models against Table VIII."""

import pytest

from repro.gpusim import PAPER_DEVICES, device_report, theoretical_throughput, simulated_throughput
from repro.gpusim.throughput import cycles_per_hash_simulated, cycles_per_hash_theoretical
from repro.gpusim.arch import ARCHITECTURES
from repro.kernels import InstructionMix
from repro.kernels.variants import HashAlgorithm, KernelVariant, get_kernel

#: Table VIII, verbatim (Mkeys/s).
PAPER_TABLE_VIII = {
    ("md5", "theoretical"): {"8600M": 83, "8800": 568, "540M": 359.4, "550Ti": 962.7, "660": 1851},
    ("md5", "ours"): {"8600M": 71, "8800": 480, "540M": 214, "550Ti": 654, "660": 1841},
    ("sha1", "theoretical"): {"8600M": 25, "8800": 170, "540M": 128, "550Ti": 345, "660": 390},
    ("sha1", "ours"): {"8600M": 22, "8800": 137, "540M": 92, "550Ti": 310, "660": 390},
}


class TestTheoreticalMD5:
    """MD5 theoretical rows must match the paper to ~1% (same formulas,
    same Table VI instruction counts)."""

    @pytest.mark.parametrize("device_name", ["8600M", "8800", "540M", "550Ti", "660"])
    def test_matches_paper(self, device_name):
        dev = PAPER_DEVICES[device_name]
        mix = get_kernel(HashAlgorithm.MD5, KernelVariant.BYTE_PERM).mix_for(dev.family)
        got = theoretical_throughput(dev, mix)
        want = PAPER_TABLE_VIII[("md5", "theoretical")][device_name]
        assert got == pytest.approx(want, rel=0.02)

    def test_1x_formula_is_class_serialized_sum(self):
        # T = N_ADD/10 + N_LOP/8 + N_SHM/8 on CC 1.x.
        arch = ARCHITECTURES["1.*"]
        mix = InstructionMix.of(IADD=197, LOP=118, SHIFT=90)
        assert cycles_per_hash_theoretical(arch, mix) == pytest.approx(
            197 / 10 + 118 / 8 + 90 / 8
        )

    def test_30_formula_is_shift_port_bound(self):
        # X_3.0 = X_SHM * MP / N_SHM for MD5 (Section VI-B).
        arch = ARCHITECTURES["3.0"]
        mix = InstructionMix.of(IADD=150, LOP=120, SHIFT=43, IMAD=43, PRMT=3)
        assert cycles_per_hash_theoretical(arch, mix) == pytest.approx(89 / 32)


class TestTheoreticalSHA1:
    """SHA1 theoretical rows: traced mixes, looser tolerance (no paper
    instruction table exists; deltas recorded in EXPERIMENTS.md)."""

    @pytest.mark.parametrize(
        "device_name,rel", [("8600M", 0.10), ("8800", 0.10), ("540M", 0.20), ("550Ti", 0.20), ("660", 0.10)]
    )
    def test_within_band(self, device_name, rel):
        dev = PAPER_DEVICES[device_name]
        mix = get_kernel(HashAlgorithm.SHA1, KernelVariant.OPTIMIZED).mix_for(dev.family)
        got = theoretical_throughput(dev, mix)
        want = PAPER_TABLE_VIII[("sha1", "theoretical")][device_name]
        assert got == pytest.approx(want, rel=rel)


class TestSimulatedOurs:
    """The 'our approach' rows: port model with realistic issue."""

    @pytest.mark.parametrize("device_name", ["8600M", "8800", "540M", "550Ti", "660"])
    def test_md5_within_band(self, device_name):
        dev = PAPER_DEVICES[device_name]
        got = device_report(dev, HashAlgorithm.MD5).achieved_mkeys
        want = PAPER_TABLE_VIII[("md5", "ours")][device_name]
        assert got == pytest.approx(want, rel=0.12)

    @pytest.mark.parametrize("device_name", ["8600M", "8800", "540M", "550Ti", "660"])
    def test_sha1_within_band(self, device_name):
        dev = PAPER_DEVICES[device_name]
        got = device_report(dev, HashAlgorithm.SHA1).achieved_mkeys
        want = PAPER_TABLE_VIII[("sha1", "ours")][device_name]
        assert got == pytest.approx(want, rel=0.20)

    def test_kepler_near_theoretical(self):
        # "on the Kepler architecture we achieve roughly the maximum
        # expected efficiency, that is 99.46%".
        report = device_report(PAPER_DEVICES["660"], HashAlgorithm.MD5)
        assert report.efficiency > 0.95

    def test_fermi_far_from_theoretical(self):
        # Lack of ILP leaves a core group idle: ~60-70% of peak.
        report = device_report(PAPER_DEVICES["540M"], HashAlgorithm.MD5)
        assert 0.55 < report.efficiency < 0.75

    def test_cc1x_close_to_theoretical(self):
        report = device_report(PAPER_DEVICES["8800"], HashAlgorithm.MD5)
        assert 0.80 < report.efficiency < 0.95

    def test_achieved_never_exceeds_theoretical(self):
        for dev in PAPER_DEVICES.values():
            for algo in HashAlgorithm:
                r = device_report(dev, algo)
                assert r.achieved_mkeys <= r.theoretical_mkeys * 1.0001


class TestModelProperties:
    def test_ilp_monotone(self):
        dev = PAPER_DEVICES["540M"]
        mix = get_kernel(HashAlgorithm.MD5).mix_for(dev.family)
        xs = [simulated_throughput(dev, mix, ilp, 0.0) for ilp in (0.0, 0.25, 0.5, 1.0)]
        assert xs == sorted(xs)

    def test_full_ilp_reaches_theoretical(self):
        # With full dual issue the schedulers saturate the ports.
        dev = PAPER_DEVICES["540M"]
        mix = get_kernel(HashAlgorithm.MD5).mix_for(dev.family)
        assert simulated_throughput(dev, mix, 1.0, 0.0) == pytest.approx(
            theoretical_throughput(dev, mix), rel=0.01
        )

    def test_overhead_reduces_throughput(self):
        dev = PAPER_DEVICES["660"]
        mix = get_kernel(HashAlgorithm.MD5).mix_for(dev.family)
        assert simulated_throughput(dev, mix, 0.0, 0.10) < simulated_throughput(dev, mix, 0.0, 0.0)

    def test_parameter_validation(self):
        dev = PAPER_DEVICES["660"]
        mix = get_kernel(HashAlgorithm.MD5).mix_for(dev.family)
        with pytest.raises(ValueError):
            simulated_throughput(dev, mix, ilp_fraction=1.5)
        with pytest.raises(ValueError):
            simulated_throughput(dev, mix, overhead=1.0)

    def test_funnel_shift_device_beats_30_per_clock(self):
        # The CC 3.5 extrapolation: fewer shift-port cycles per hash.
        from repro.gpusim import DEVICES

        mix35 = get_kernel(HashAlgorithm.MD5).mix_for("3.5")
        mix30 = get_kernel(HashAlgorithm.MD5).mix_for("3.0")
        c35 = cycles_per_hash_theoretical(ARCHITECTURES["3.5"], mix35)
        c30 = cycles_per_hash_theoretical(ARCHITECTURES["3.0"], mix30)
        assert c35 < c30
