"""Tests for mask key spaces and mask cracking."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.maskcrack import MaskCrackStats, MaskTarget, crack_mask
from repro.keyspace import Interval
from repro.keyspace.masks import MASK_TOKENS, MaskSpace, parse_mask
from repro.kernels.variants import HashAlgorithm


class TestParseMask:
    def test_tokens(self):
        charsets = parse_mask("?u?l?d?s?a")
        assert [len(cs) for cs in charsets] == [26, 26, 10, 33, 95]

    def test_literals(self):
        charsets = parse_mask("a?d-")
        assert charsets[0].symbols == "a"
        assert charsets[1] is MASK_TOKENS["d"]
        assert charsets[2].symbols == "-"

    def test_escaped_question_mark(self):
        charsets = parse_mask("???d")
        assert charsets[0].symbols == "?"
        assert len(charsets[1]) == 10

    def test_errors(self):
        with pytest.raises(ValueError, match="dangling"):
            parse_mask("?l?")
        with pytest.raises(ValueError, match="unknown mask token"):
            parse_mask("?z")
        with pytest.raises(ValueError, match="empty"):
            parse_mask("")


class TestMaskSpace:
    def test_size_is_product(self):
        space = MaskSpace.from_mask("?u?l?d")
        assert space.size == 26 * 26 * 10
        assert space.length == 3

    def test_literal_positions_are_fixed(self):
        space = MaskSpace.from_mask("A?d!")
        assert space.size == 10
        assert space.key_at(0) == "A0!"
        assert space.key_at(9) == "A9!"

    @given(index=st.integers(0, 26 * 26 * 10 - 1))
    @settings(max_examples=50)
    def test_bijection_roundtrip(self, index):
        space = MaskSpace.from_mask("?u?l?d")
        assert space.index_of(space.key_at(index)) == index

    def test_prefix_fastest_order(self):
        space = MaskSpace.from_mask("?l?d")
        assert space.key_at(0) == "a0"
        assert space.key_at(1) == "b0"  # position 0 varies fastest
        assert space.key_at(26) == "a1"

    def test_next_key_equals_key_at_successor(self):
        space = MaskSpace.from_mask("?d?l")
        for i in range(space.size - 1):
            assert space.next_key(space.key_at(i)) == space.key_at(i + 1)
        assert space.next_key(space.key_at(space.size - 1)) is None

    def test_index_of_validates(self):
        space = MaskSpace.from_mask("?u?d")
        with pytest.raises(ValueError, match="length"):
            space.index_of("A")
        with pytest.raises(ValueError, match="not in charset"):
            space.index_of("aa")

    def test_key_at_bounds(self):
        space = MaskSpace.from_mask("?d")
        with pytest.raises(IndexError):
            space.key_at(10)

    def test_batch_matches_scalar(self):
        space = MaskSpace.from_mask("?u?l?d")
        chars = space.batch_keys(100, 50)
        for i in range(50):
            assert chars[i].tobytes().decode() == space.key_at(100 + i)

    def test_batch_bounds(self):
        space = MaskSpace.from_mask("?d?d")
        with pytest.raises(IndexError):
            space.batch_keys(95, 10)
        with pytest.raises(ValueError):
            space.batch_keys(0, -1)

    def test_huge_mask_fallback_path(self):
        space = MaskSpace.from_mask("?a" * 11)  # 95**11 > 2**63
        assert space.size > 2**63
        start = space.size - 5
        chars = space.batch_keys(start, 3)
        for i in range(3):
            assert chars[i].tobytes().decode("latin-1") == space.key_at(start + i)

    def test_iter_keys(self):
        space = MaskSpace.from_mask("?d?d")
        keys = list(space.iter_keys(Interval(5, 9)))
        assert keys == [space.key_at(i) for i in range(5, 9)]

    def test_describe(self):
        text = MaskSpace.from_mask("?u?l?d").describe()
        assert "6,760 keys" in text


class TestMaskCracking:
    def test_cracks_policy_shaped_password(self):
        target = MaskTarget.from_password("Xy4", "?u?l?d")
        stats = MaskCrackStats()
        matches = crack_mask(target, stats=stats)
        assert matches == [(target.space.index_of("Xy4"), "Xy4")]
        assert stats.tested == target.space.size
        assert stats.mkeys_per_second > 0

    def test_password_violating_mask_rejected(self):
        with pytest.raises(ValueError):
            MaskTarget.from_password("xy4", "?u?l?d")  # x not upper-case

    def test_salted_mask_crack(self):
        target = MaskTarget.from_password("Ab1", "?u?l?d", prefix=b"s:", suffix=b"!")
        matches = crack_mask(target, batch_size=97)
        assert [k for _, k in matches] == ["Ab1"]
        assert target.verify("Ab1")

    def test_sha1_mask_crack(self):
        target = MaskTarget.from_password("Q7", "?u?d", algorithm=HashAlgorithm.SHA1)
        matches = crack_mask(target)
        assert [k for _, k in matches] == ["Q7"]

    def test_interval_restriction(self):
        target = MaskTarget.from_password("Zz9", "?u?l?d")
        index = target.space.index_of("Zz9")
        assert crack_mask(target, Interval(0, index)) == []
        assert crack_mask(target, Interval(index, index + 1)) == [(index, "Zz9")]

    def test_digest_validation(self):
        space = MaskSpace.from_mask("?d")
        with pytest.raises(ValueError, match="16 bytes"):
            MaskTarget(HashAlgorithm.MD5, b"short", space)

    def test_capacity_validation(self):
        space = MaskSpace.from_mask("?l" * 30)
        with pytest.raises(ValueError, match="single-block"):
            MaskTarget(HashAlgorithm.MD5, hashlib.md5(b"x").digest(), space, prefix=b"p" * 30)

    def test_no_match(self):
        space = MaskSpace.from_mask("?d?d")
        target = MaskTarget(HashAlgorithm.MD5, hashlib.md5(b"nope").digest(), space)
        assert crack_mask(target) == []

    def test_invalid_batch(self):
        target = MaskTarget.from_password("A1", "?u?d")
        with pytest.raises(ValueError):
            crack_mask(target, batch_size=0)
        with pytest.raises(IndexError):
            crack_mask(target, Interval(0, target.space.size + 1))

    def test_mask_shrinks_the_space(self):
        # The policy argument: the mask space is a tiny slice of the
        # uniform space of the same length.
        from repro.keyspace import space_size

        mask = MaskSpace.from_mask("?u?l?l?l?d?d")
        uniform = space_size(62, 6, 6)
        assert mask.size / uniform < 0.001
