"""Documentation honesty tests: code in the docs must actually run."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def python_blocks(path: Path) -> list[str]:
    return re.findall(r"```python\n(.*?)```", path.read_text(), re.S)


class TestTutorialSnippets:
    def test_every_block_executes(self):
        blocks = python_blocks(ROOT / "docs" / "TUTORIAL.md")
        assert len(blocks) >= 8
        namespace: dict = {}
        for i, block in enumerate(blocks):
            code = "\n".join(
                line for line in block.splitlines() if not line.strip().startswith("#")
            )
            exec(compile(code, f"<tutorial-{i}>", "exec"), namespace)  # noqa: S102

    def test_readme_quickstart_executes(self):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README must show runnable quickstart code"
        namespace: dict = {}
        for i, block in enumerate(blocks):
            code = "\n".join(
                line for line in block.splitlines() if not line.strip().startswith("#")
            )
            exec(compile(code, f"<readme-{i}>", "exec"), namespace)  # noqa: S102


class TestDesignDocCoverage:
    def test_every_bench_file_is_indexed(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in design, f"{bench.name} missing from DESIGN.md index"

    def test_experiments_references_real_benches(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        referenced = set(re.findall(r"bench_\w+\.py", experiments))
        existing = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        assert referenced <= existing
        assert len(referenced) >= 10

    def test_design_modules_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        for dotted in re.findall(r"`repro\.([a-z_.]+)`", design):
            parts = dotted.split(".")
            candidates = [
                ROOT / "src" / "repro" / Path(*parts) / "__init__.py",
                ROOT / "src" / "repro" / Path(*parts[:-1]) / f"{parts[-1]}.py",
            ]
            assert any(c.exists() for c in candidates), f"repro.{dotted} not found"
