"""Slow stress tests: realistic-scale runs of the real engines.

Marked ``slow``; excluded from the quick loop with ``-m 'not slow'``.
"""

import hashlib

import pytest

from repro.apps.cracking import CrackEngine, CrackTarget
from repro.apps.ntlm import NTLMTarget, crack_ntlm
from repro.cluster import build_paper_network, simulate_run
from repro.keyspace import ALNUM_LOWER, ALNUM_MIXED, Interval
from repro.kernels.variants import HashAlgorithm

pytestmark = pytest.mark.slow


class TestRealisticCracks:
    def test_md5_four_char_alnum_full_space(self):
        # 36^4 = 1.68M candidates through the reversal engine.
        target = CrackTarget.from_password(
            "zq7x", ALNUM_LOWER, min_length=4, max_length=4
        )
        engine = CrackEngine(target, batch_size=1 << 15)
        matches = engine.search_all()
        assert [k for _, k in matches] == ["zq7x"]
        assert engine.stats.tested == 36**4
        assert engine.stats.mkeys_per_second > 0.5

    def test_sha1_late_key_in_window(self):
        target = CrackTarget.from_password(
            "99zZ", ALNUM_MIXED, algorithm=HashAlgorithm.SHA1, min_length=4, max_length=4
        )
        index = target.mapping.index_of("99zZ")
        window = Interval(max(0, index - 200_000), min(target.space_size, index + 200_000))
        matches = CrackEngine(target, batch_size=1 << 14).search(window)
        assert (index, "99zZ") in matches

    def test_ntlm_five_char_window(self):
        target = NTLMTarget.from_password("qwert", ALNUM_LOWER, min_length=5, max_length=5)
        index = target.mapping.index_of("qwert")
        window = Interval(max(0, index - 300_000), index + 300_000)
        matches = crack_ntlm(target, window, batch_size=1 << 15)
        assert (index, "qwert") in matches

    def test_no_false_positives_over_a_million_keys(self):
        # Scan a million candidates against a digest with no preimage in
        # range; the early-exit filter must reject every one of them.
        target = CrackTarget(
            algorithm=HashAlgorithm.MD5,
            digest=hashlib.md5(b"definitely-not-in-the-window").digest(),
            charset=ALNUM_MIXED,
            min_length=8,
            max_length=8,
        )
        assert CrackEngine(target, batch_size=1 << 15).search(Interval(0, 1_000_000)) == []


class TestClusterAtScale:
    def test_paper_network_on_a_trillion_keys(self):
        net = build_paper_network(HashAlgorithm.MD5)
        result = simulate_run(net, 10**12)
        assert result.dispatch_efficiency > 0.99
        assert result.network_efficiency == pytest.approx(0.85, abs=0.02)
        # ~5 minutes of simulated wall time at 3.25 Gkeys/s.
        assert 250 < result.elapsed < 350
