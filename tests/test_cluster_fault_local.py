"""Tests for fault-tolerant dispatching and the real multiprocessing backend."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cracking import CrackTarget
from repro.cluster import (
    ClusterNode,
    FaultPlan,
    GPUWorker,
    LocalCluster,
    run_with_faults,
)
from repro.keyspace import Charset, Interval

ABC = Charset("abc", name="abc")


def tree():
    d = ClusterNode("D", devices=[GPUWorker("gpu-d", 4e6)])
    c = ClusterNode("C", devices=[GPUWorker("gpu-c", 1e6)], children=[d])
    b = ClusterNode("B", devices=[GPUWorker("gpu-b1", 8e6), GPUWorker("gpu-b2", 3e6)])
    return ClusterNode("A", devices=[GPUWorker("gpu-a", 2e6)], children=[b, c])


class TestFaultFreeRun:
    def test_covers_exactly(self):
        report = run_with_faults(tree(), 10_000_000, round_size=1_000_000)
        assert report.covered_exactly
        assert report.requeued_candidates == 0
        assert report.failure_events == []
        assert report.rounds == 10

    def test_throughput_near_aggregate(self):
        report = run_with_faults(tree(), 50_000_000, round_size=10_000_000)
        assert report.throughput == pytest.approx(18e6, rel=0.1)


class TestFailures:
    def test_leaf_node_failure_requeues_and_completes(self):
        plan = FaultPlan(failures={"D": 2})
        report = run_with_faults(tree(), 10_000_000, round_size=1_000_000, plan=plan)
        assert report.covered_exactly
        assert report.requeued_candidates > 0
        assert (2, "D") in report.failure_events
        # gpu-d did some work before dying, none after.
        d_work = sum(iv.size for iv in report.completed["gpu-d"])
        assert 0 < d_work < 10_000_000

    def test_dispatcher_failure_silences_subtree(self):
        # Killing C also silences D (the paper's stated weakness).
        plan = FaultPlan(failures={"C": 1})
        report = run_with_faults(tree(), 10_000_000, round_size=1_000_000, plan=plan)
        assert report.covered_exactly
        # After round 1 neither gpu-c nor gpu-d completes anything.
        for dev in ("gpu-c", "gpu-d"):
            assert all(iv.stop <= 3_000_000 for iv in report.completed[dev])

    def test_failure_slows_the_run(self):
        clean = run_with_faults(tree(), 20_000_000, round_size=2_000_000)
        faulty = run_with_faults(
            tree(), 20_000_000, round_size=2_000_000, plan=FaultPlan(failures={"B": 0})
        )
        assert faulty.wall_time > clean.wall_time
        assert faulty.covered_exactly

    def test_recovery_rejoins(self):
        plan = FaultPlan(failures={"B": 1}, recoveries={"B": 4})
        report = run_with_faults(tree(), 30_000_000, round_size=2_000_000, plan=plan)
        assert report.covered_exactly
        b_intervals = report.completed["gpu-b1"]
        assert b_intervals  # worked before failure and after recovery

    def test_all_dead_raises(self):
        plan = FaultPlan(failures={"A": 0})
        with pytest.raises(RuntimeError, match="no devices alive"):
            run_with_faults(tree(), 1_000_000, round_size=100_000, plan=plan)

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="unknown nodes"):
            run_with_faults(tree(), 100, 10, plan=FaultPlan(failures={"Z": 0}))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            run_with_faults(tree(), 0, 10)
        with pytest.raises(ValueError):
            run_with_faults(tree(), 10, 0)

    @settings(max_examples=15, deadline=None)
    @given(
        fail_round=st.integers(0, 5),
        node=st.sampled_from(["B", "C", "D"]),
        total=st.integers(1_000_000, 20_000_000),
    )
    def test_property_coverage_under_any_single_failure(self, fail_round, node, total):
        plan = FaultPlan(failures={node: fail_round})
        report = run_with_faults(tree(), total, round_size=1_000_000, plan=plan)
        assert report.covered_exactly


class TestLocalCluster:
    def test_serial_crack_finds_password(self):
        target = CrackTarget.from_password("cab", ABC, min_length=1, max_length=4)
        outcome = LocalCluster(workers=1, batch_size=512).crack(target)
        assert "cab" in outcome.keys
        assert outcome.tested == target.space_size
        assert outcome.elapsed > 0
        assert outcome.mkeys_per_second > 0

    def test_parallel_crack_finds_password(self):
        target = CrackTarget.from_password("bcab", ABC, min_length=1, max_length=4)
        outcome = LocalCluster(workers=2, batch_size=512).crack(target, chunk_size=17)
        assert "bcab" in outcome.keys
        assert outcome.tested == target.space_size

    def test_stop_on_first_prunes_dispatch(self):
        target = CrackTarget.from_password("a", ABC, min_length=1, max_length=4)
        outcome = LocalCluster(workers=1, batch_size=64).crack(
            target, chunk_size=8, stop_on_first=True
        )
        assert "a" in outcome.keys
        assert outcome.tested < target.space_size

    def test_interval_restriction(self):
        target = CrackTarget.from_password("cc", ABC, min_length=1, max_length=3)
        index = target.mapping.index_of("cc")
        outcome = LocalCluster(workers=1).crack(target, Interval(0, index))
        assert outcome.keys == []

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalCluster(workers=0)
        with pytest.raises(ValueError):
            LocalCluster(batch_size=0)

    def test_results_sorted_by_index(self):
        target = CrackTarget.from_password("ab", ABC, min_length=1, max_length=3)
        outcome = LocalCluster(workers=2).crack(target, chunk_size=5)
        indices = [i for i, _ in outcome.found]
        assert indices == sorted(indices)


class TestTopologyReconfiguration:
    """The paper's future-work item: re-parent a dead dispatcher's children."""

    def test_reparenting_keeps_the_orphaned_subtree_working(self):
        # Without reparenting, killing C silences D; with it, D survives.
        plan_off = FaultPlan(failures={"C": 1})
        plan_on = FaultPlan(failures={"C": 1}, reparent_orphans=True)
        off = run_with_faults(tree(), 20_000_000, round_size=1_000_000, plan=plan_off)
        on = run_with_faults(tree(), 20_000_000, round_size=1_000_000, plan=plan_on)
        assert off.covered_exactly and on.covered_exactly
        d_work_off = sum(iv.size for iv in off.completed["gpu-d"] if iv.start >= 2_000_000)
        d_work_on = sum(iv.size for iv in on.completed["gpu-d"] if iv.start >= 2_000_000)
        assert d_work_off == 0  # D silenced with its dispatcher
        assert d_work_on > 0  # D re-attached to A and kept working

    def test_reparenting_recovers_more_throughput(self):
        plan_off = FaultPlan(failures={"C": 0})
        plan_on = FaultPlan(failures={"C": 0}, reparent_orphans=True)
        off = run_with_faults(tree(), 30_000_000, round_size=1_000_000, plan=plan_off)
        on = run_with_faults(tree(), 30_000_000, round_size=1_000_000, plan=plan_on)
        # gpu-d is 4 Mk/s of the tree's 18: keeping it matters.
        assert on.wall_time < off.wall_time

    def test_dead_nodes_own_devices_still_lost(self):
        plan = FaultPlan(failures={"C": 0}, reparent_orphans=True)
        report = run_with_faults(tree(), 10_000_000, round_size=1_000_000, plan=plan)
        assert report.covered_exactly
        # C's own GPU contributes nothing after the failure round.
        assert all(iv.stop <= 1_000_000 for iv in report.completed["gpu-c"])

    def test_root_cannot_be_reparented(self):
        plan = FaultPlan(failures={"A": 0}, reparent_orphans=True)
        with pytest.raises(RuntimeError, match="no devices alive"):
            run_with_faults(tree(), 1_000_000, round_size=100_000, plan=plan)

    def test_reconfiguration_time_charged(self):
        fast = FaultPlan(failures={"C": 0}, reparent_orphans=True, reconfiguration_time=0.0)
        slow = FaultPlan(failures={"C": 0}, reparent_orphans=True, reconfiguration_time=5.0)
        t_fast = run_with_faults(tree(), 10_000_000, 1_000_000, plan=fast).wall_time
        t_slow = run_with_faults(tree(), 10_000_000, 1_000_000, plan=slow).wall_time
        assert t_slow == pytest.approx(t_fast + 5.0)
