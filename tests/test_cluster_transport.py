"""The TCP transport: framing, registration, reconnect, address parsing."""

import socket
import threading
import time

import pytest

from repro.cluster.protocol import (
    ControlMessage,
    GatherMessage,
    HeartbeatMessage,
    ScatterMessage,
    decode_any,
)
from repro.cluster.transport import (
    FrameDecoder,
    FrameError,
    MAX_FRAME_PAYLOAD,
    MessageStream,
    TcpMasterTransport,
    WorkerClient,
    encode_frame,
    parse_address,
)
from repro.keyspace import Interval


class TestFraming:
    def test_roundtrip(self):
        decoder = FrameDecoder()
        payloads = [b"alpha", b"", b"x" * 700]
        stream = b"".join(encode_frame(p) for p in payloads)
        assert decoder.feed(stream) == payloads

    def test_incremental_byte_at_a_time(self):
        decoder = FrameDecoder()
        payload = HeartbeatMessage("w0", False, 123).encode()
        out = []
        for byte in encode_frame(payload):
            out.extend(decoder.feed(bytes([byte])))
        assert out == [payload]
        assert decode_any(out[0]).node == "w0"

    def test_bad_crc_is_skipped_and_counted(self):
        decoder = FrameDecoder()
        good = encode_frame(b"good")
        bad = bytearray(encode_frame(b"evil"))
        bad[-1] ^= 0xFF  # flip a payload byte: CRC mismatch
        out = decoder.feed(bytes(bad) + good)
        assert out == [b"good"]
        assert decoder.corrupt == 1

    def test_insane_length_is_fatal(self):
        decoder = FrameDecoder()
        frame = bytearray(encode_frame(b"tiny"))
        frame[0:4] = (MAX_FRAME_PAYLOAD + 1).to_bytes(4, "big")
        with pytest.raises(FrameError):
            decoder.feed(bytes(frame))

    def test_empty_feed_is_noop(self):
        assert FrameDecoder().feed(b"") == []


class TestParseAddress:
    def test_plain_and_scheme(self):
        assert parse_address("10.0.0.1:9000") == ("10.0.0.1", 9000)
        assert parse_address("tcp://10.0.0.1:9000") == ("10.0.0.1", 9000)

    def test_rejects_garbage(self):
        for bad in ("nohost", "host:notaport", "udp://h:1", ""):
            with pytest.raises(ValueError):
                parse_address(bad)


class TestMessageStream:
    def test_socketpair_roundtrip(self):
        a, b = socket.socketpair()
        left, right = MessageStream(a), MessageStream(b)
        try:
            msg = ScatterMessage(
                interval=Interval(0, 100),
                digest=b"\x00" * 16,
                charset="abc",
                min_length=1,
                max_length=3,
            )
            left.send(msg.encode())
            got = right.recv(timeout=5)
            assert decode_any(got).interval == Interval(0, 100)
        finally:
            left.close()
            right.close()

    def test_recv_timeout_returns_none(self):
        a, b = socket.socketpair()
        try:
            assert MessageStream(b).recv(timeout=0.05) is None
        finally:
            a.close()
            b.close()


def _heartbeat(name: str) -> bytes:
    return HeartbeatMessage(node=name, busy=False, rate_keys_per_s=0).encode()


class TestTcpMasterTransport:
    def test_registration_and_both_directions(self):
        transport = TcpMasterTransport().start()
        host, port = transport.address
        sock = socket.create_connection((host, port))
        stream = MessageStream(sock)
        try:
            stream.send(_heartbeat("node-a"))
            assert transport.wait_for_workers(1, timeout=5)
            assert transport.workers() == ["node-a"]
            item = transport.poll(timeout=5)
            assert item is not None and item[0] == "node-a"
            reply = GatherMessage(Interval(0, 10), tested=10, elapsed_us=1)
            stream.send(reply.encode())
            got = None
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                item = transport.poll(timeout=0.2)
                if item and item[1] is not None:
                    msg = decode_any(item[1])
                    if isinstance(msg, GatherMessage):
                        got = msg
                        break
            assert got is not None and got.tested == 10
            assert transport.send("node-a", ControlMessage("cancel").encode())
            ctl = decode_any(stream.recv(timeout=5))
            assert ctl.command == "cancel"
        finally:
            stream.close()
            transport.close()

    def test_disconnect_surfaces_as_none_payload(self):
        transport = TcpMasterTransport().start()
        host, port = transport.address
        sock = socket.create_connection((host, port))
        stream = MessageStream(sock)
        try:
            stream.send(_heartbeat("node-b"))
            assert transport.wait_for_workers(1, timeout=5)
            stream.close()
            deadline = time.monotonic() + 5
            dropped = False
            while time.monotonic() < deadline:
                item = transport.poll(timeout=0.2)
                if item == ("node-b", None):
                    dropped = True
                    break
            assert dropped
            assert not transport.send("node-b", b"anything")
        finally:
            transport.close()

    def test_send_to_unknown_worker_fails_cleanly(self):
        transport = TcpMasterTransport().start()
        try:
            assert transport.send("ghost", b"boo") is False
            assert transport.broadcast(b"boo") == 0
        finally:
            transport.close()


class TestWorkerClientReconnect:
    def test_client_survives_master_restart(self):
        """Kill the master's socket mid-session; the client backs off,
        reconnects to the new listener, and completes work there."""
        first = TcpMasterTransport().start()
        host, port = first.address
        client = WorkerClient(
            "phoenix",
            host,
            port,
            batch_size=64,
            heartbeat_interval=0.05,
            max_failures=200,
        )
        runner = threading.Thread(target=client.run, daemon=True)
        runner.start()
        try:
            assert first.wait_for_workers(1, timeout=5)
        finally:
            first.close()  # hard stop: every connection dies
        # The OS usually hands the freed port back; retry binding it so the
        # reconnecting client finds a listener at the same address.
        second = None
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            try:
                second = TcpMasterTransport(host=host, port=port).start()
                break
            except OSError:
                time.sleep(0.1)
        assert second is not None, "could not rebind the master port"
        try:
            assert second.wait_for_workers(1, timeout=10)
            assert second.workers() == ["phoenix"]
            assert client.stats.reconnects >= 1
        finally:
            client.stop()
            second.broadcast(ControlMessage("shutdown").encode())
            second.close()
            runner.join(timeout=5)
