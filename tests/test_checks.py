"""Tests for the ``repro check`` static-analysis suite.

Each deliberately-broken fixture under ``tests/checks_fixtures/`` must
fail exactly its rule, the baseline round-trips, the JSON report is
schema-stable, and the suppression comment works — plus the acceptance
bar: the repo itself is clean under ``--strict``.
"""

import json
from pathlib import Path

import pytest

from repro.checks import (
    BASELINE_SCHEMA,
    REPORT_SCHEMA,
    all_rules,
    apply_baseline,
    load_baseline,
    load_project,
    run_checks,
    save_baseline,
)
from repro.checks.cli import main as check_main

FIXTURES = Path(__file__).parent / "checks_fixtures"
REPO_ROOT = Path(__file__).parent.parent

RULE_NAMES = {
    "lock-discipline",
    "metric-registry",
    "protocol-symmetry",
    "hot-path-allocation",
    "fork-safety",
}


def findings_for(paths, rules=None, root=FIXTURES):
    project = load_project(root, [root / p for p in paths])
    return run_checks(project, rules)


class TestRuleCatalog:
    def test_all_five_domain_rules_registered(self):
        assert {rule.name for rule in all_rules()} >= RULE_NAMES

    def test_rules_carry_severity_and_doc(self):
        for rule in all_rules():
            assert rule.severity in ("info", "warning", "error")
            assert rule.doc.strip()


class TestFixturesFailTheirRules:
    def test_lock_discipline_fixture(self):
        found = findings_for(["bad_lock.py"], ["lock-discipline"])
        methods = {f.symbol.split(":")[1] for f in found}
        assert methods == {"size", "drop", "bump"}
        assert all(f.rule == "lock-discipline" for f in found)
        assert all(f.severity == "error" for f in found)

    def test_metric_registry_fixture(self):
        found = findings_for(["bad_metric.py"], ["metric-registry"])
        names = {f.symbol for f in found}
        assert names == {"literal:totally.made.up", "literal:another.rogue.name"}

    def test_metric_registry_dead_name_fixture(self):
        found = findings_for(["metrics_project"], ["metric-registry"])
        assert {f.symbol for f in found} == {"dead:DEAD"}

    def test_protocol_symmetry_fixture(self):
        found = findings_for(["proto_project"], ["protocol-symmetry"])
        symbols = {f.symbol for f in found}
        assert "BrokenMessage.decode" in symbols
        assert "BrokenMessage.decode_any" in symbols
        assert not any(s.startswith("GoodMessage") for s in symbols)

    def test_protocol_symmetry_api_registry_fixture(self):
        found = findings_for(["api_project"], ["protocol-symmetry"])
        symbols = {f.symbol for f in found}
        assert symbols == {
            "REQUEST_VALIDATORS.broken.validator",  # maps to an undefined name
            "RESPONSE_VALIDATORS.orphan.tested",  # no test names the kind
        }
        assert all(f.severity == "error" for f in found)

    def test_hot_path_fixture(self):
        found = findings_for(["bad_hot_path.py"], ["hot-path-allocation"])
        assert len(found) == 3  # bytes(), comprehension, .append
        assert all("fake_compress_batch_into" in f.message for f in found)

    def test_fork_safety_fixture(self):
        found = findings_for(["bad_fork_safety.py"], ["fork-safety"])
        symbols = {f.symbol for f in found}
        assert "WorkSpan.guard" in symbols
        assert "WorkSpan.handle" in symbols
        assert "submit:lambda" in symbols
        assert "submit:run_one" in symbols


class TestSuppression:
    def test_allow_comment_silences_one_line(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def inc(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def peek(self):\n"
            "        return self._n  # repro: allow(lock-discipline)\n"
            "    def poke(self):\n"
            "        return self._n\n"
        )
        found = run_checks(load_project(tmp_path), ["lock-discipline"])
        assert [f.line for f in found] == [12]  # only the unsuppressed access

    def test_allow_on_def_header_covers_the_body(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(
            "def x_into(out):  # repro: allow(hot-path-allocation)\n"
            "    out.append(1)\n"
            "    return bytes(2)\n"
        )
        found = run_checks(load_project(tmp_path), ["hot-path-allocation"])
        assert found == []


class TestBaseline:
    def test_round_trip_and_apply(self, tmp_path):
        found = findings_for(["bad_lock.py"], ["lock-discipline"])
        assert found
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, found)
        document = json.loads(baseline_path.read_text())
        assert document["schema"] == BASELINE_SCHEMA
        fingerprints = load_baseline(baseline_path)
        assert fingerprints == {f.fingerprint() for f in found}
        fresh, grandfathered = apply_baseline(found, fingerprints)
        assert fresh == []
        assert grandfathered == found

    def test_fingerprint_survives_line_moves(self, tmp_path):
        def finding_after(prefix):
            src = tmp_path / "mod.py"
            src.write_text(
                prefix
                + "import threading\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._n = 0\n"
                "    def inc(self):\n"
                "        with self._lock:\n"
                "            self._n += 1\n"
                "    def peek(self):\n"
                "        return self._n\n"
            )
            (found,) = run_checks(load_project(tmp_path), ["lock-discipline"])
            return found

        before = finding_after("")
        after = finding_after("# a comment pushing everything down\n\n\n")
        assert before.line != after.line
        assert before.fingerprint() == after.fingerprint()

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": "bogus/v9", "findings": []}))
        with pytest.raises(ValueError, match="bogus"):
            load_baseline(path)


class TestCli:
    def test_json_report_schema(self, capsys):
        code = check_main(
            [
                "--root", str(FIXTURES),
                "--rules", "lock-discipline",
                "--json", "--no-baseline",
                "bad_lock.py",
            ]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == REPORT_SCHEMA
        assert document["files_scanned"] == 1
        assert document["counts"]["total"] == document["counts"]["error"] == 3
        for finding in document["findings"]:
            assert set(finding) == {
                "rule", "severity", "path", "line", "col",
                "message", "symbol", "fingerprint",
            }

    def test_strict_fails_on_warnings_default_does_not(self, capsys):
        args = [
            "--root", str(FIXTURES),
            "--rules", "hot-path-allocation",
            "--no-baseline",
            "bad_hot_path.py",
        ]
        assert check_main(args) == 0  # warnings only
        assert check_main(args + ["--strict"]) == 1
        capsys.readouterr()

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = [
            "--root", str(FIXTURES),
            "--rules", "lock-discipline",
            "--baseline", str(baseline),
            "bad_lock.py",
        ]
        assert check_main(args + ["--write-baseline"]) == 0
        assert check_main(args + ["--strict"]) == 0  # grandfathered
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert check_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULE_NAMES:
            assert name in out

    def test_unknown_rule_errors(self):
        with pytest.raises(ValueError, match="unknown rule"):
            check_main(["--root", str(FIXTURES), "--rules", "nope", "bad_lock.py"])


class TestRepoIsClean:
    def test_repo_passes_strict_with_empty_baseline(self, capsys):
        """The acceptance bar: no findings on src/repro + tests, and the
        committed baseline grandfathers nothing."""
        code = check_main(["--root", str(REPO_ROOT), "--strict"])
        out = capsys.readouterr().out
        assert code == 0, out
        baseline = load_baseline(REPO_ROOT / "checks_baseline.json")
        assert baseline == set()
