"""Tests for the launch-overhead / watchdog / tuning-curve model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import LaunchModel, efficiency_at, min_batch_for_efficiency, split_for_watchdog
from repro.gpusim.launch import launch_model_for, tuning_curve
from repro.gpusim.device import PAPER_DEVICES


def model(**kw):
    defaults = dict(peak_rate=1e9, launch_overhead=200e-6, watchdog_limit=2.0, fixed_overhead=500e-6)
    defaults.update(kw)
    return LaunchModel(**defaults)


class TestLaunchModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            model(peak_rate=0)
        with pytest.raises(ValueError):
            model(launch_overhead=-1)

    def test_candidates_per_grid(self):
        m = model(peak_rate=1e9, watchdog_limit=2.0)
        assert m.candidates_per_grid == 2_000_000_000

    def test_grids_for(self):
        m = model(peak_rate=1e6, watchdog_limit=1.0)  # 1M per grid
        assert m.grids_for(0) == 0
        assert m.grids_for(1) == 1
        assert m.grids_for(1_000_000) == 1
        assert m.grids_for(1_000_001) == 2
        assert m.grids_for(10_000_000) == 10

    def test_time_decomposition(self):
        m = model(peak_rate=1e6, watchdog_limit=1.0, launch_overhead=1e-3, fixed_overhead=2e-3)
        # 2.5M candidates: 3 grids, 2.5 s of hashing.
        assert m.time_for(2_500_000) == pytest.approx(3e-3 + 2.5 + 2e-3)

    def test_throughput_approaches_peak(self):
        m = model()
        assert m.throughput_at(10**12) == pytest.approx(m.peak_rate, rel=0.01)

    def test_zero_candidates(self):
        m = model()
        assert m.time_for(0) == 0.0
        assert m.throughput_at(0) == 0.0
        assert efficiency_at(m, 0) == 0.0


class TestEfficiencyAndTuning:
    @given(n=st.integers(1, 10**12))
    @settings(max_examples=50)
    def test_efficiency_bounded(self, n):
        m = model()
        assert 0.0 < efficiency_at(m, n) < 1.0

    def test_efficiency_mostly_increasing(self):
        m = model()
        samples = [efficiency_at(m, 10**k) for k in range(0, 12)]
        assert samples == sorted(samples)

    def test_min_batch_for_efficiency_is_minimal(self):
        m = model(peak_rate=1e8)
        n = min_batch_for_efficiency(m, 0.9)
        assert efficiency_at(m, n) >= 0.9
        assert efficiency_at(m, n - 1) < 0.9

    @given(target=st.floats(0.05, 0.99))
    @settings(max_examples=30)
    def test_min_batch_meets_target(self, target):
        m = model(peak_rate=1e8)
        n = min_batch_for_efficiency(m, target)
        assert efficiency_at(m, n) >= target

    def test_unreachable_target_rejected(self):
        m = model(launch_overhead=0.5, watchdog_limit=1.0)  # asymptote 2/3
        with pytest.raises(ValueError, match="unreachable"):
            min_batch_for_efficiency(m, 0.9)

    def test_target_range_validated(self):
        with pytest.raises(ValueError):
            min_batch_for_efficiency(model(), 0.0)
        with pytest.raises(ValueError):
            min_batch_for_efficiency(model(), 1.0)

    def test_tuning_curve_shape(self):
        m = model()
        curve = tuning_curve(m, [10**k for k in range(3, 10)])
        assert len(curve) == 7
        effs = [e for _, e in curve]
        assert effs == sorted(effs)

    def test_faster_node_needs_larger_batch(self):
        # The paper: N_max = max_j(n_j * X_max / X_j) — faster nodes need
        # proportionally more work for the same efficiency.
        slow = model(peak_rate=71e6)  # 8600M-class
        fast = model(peak_rate=1841e6)  # GTX 660-class
        assert min_batch_for_efficiency(fast, 0.9) > min_batch_for_efficiency(slow, 0.9)


class TestWatchdogSplit:
    def test_split_sizes(self):
        m = model(peak_rate=1e6, watchdog_limit=1.0)
        assert split_for_watchdog(m, 2_500_000) == [1_000_000, 1_000_000, 500_000]

    def test_split_empty(self):
        assert split_for_watchdog(model(), 0) == []

    def test_split_negative_rejected(self):
        with pytest.raises(ValueError):
            split_for_watchdog(model(), -1)

    @given(n=st.integers(0, 10**7))
    @settings(max_examples=30)
    def test_split_conserves_work(self, n):
        m = model(peak_rate=1e5, watchdog_limit=1.0)
        parts = split_for_watchdog(m, n)
        assert sum(parts) == n
        assert all(0 < p <= m.candidates_per_grid for p in parts)

    def test_launch_model_for_device(self):
        m = launch_model_for(PAPER_DEVICES["660"], 1841.0)
        assert m.peak_rate == pytest.approx(1841e6)
