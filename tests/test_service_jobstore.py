"""Tests for the durable job store: repro-job/v1 schema, atomic writes."""

import hashlib
import json

import pytest

from repro.core.progress import CorruptCheckpointError, ProgressLog
from repro.keyspace import Interval
from repro.service import (
    JOB_SCHEMA,
    JOB_STATES,
    JobRecord,
    JobSpec,
    JobStore,
    atomic_write_json,
    validate_job,
)


def spec(password=b"dog", **kw):
    defaults = dict(
        digest=hashlib.md5(password).digest(),
        charset="abcdefghijklmnopqrstuvwxyz",
        min_length=1,
        max_length=3,
        chunk_size=500,
    )
    defaults.update(kw)
    return JobSpec(**defaults)


class TestJobSpec:
    def test_dict_roundtrip(self):
        original = spec(prefix=b"s:", suffix=b"!x", backend="thread", workers=3)
        clone = JobSpec.from_dict(original.to_dict())
        assert clone == original
        assert json.dumps(original.to_dict())  # JSON-serializable as-is

    def test_rebuilds_target(self):
        target = spec().to_target()
        assert target.space_size == 26 + 26**2 + 26**3
        assert spec().space_size == target.space_size

    def test_invalid_target_rejected_at_submit_time(self):
        with pytest.raises(ValueError):
            spec(digest=b"short")
        with pytest.raises(ValueError):
            spec(charset="aa")  # duplicate symbols
        with pytest.raises(ValueError):
            spec(chunk_size=0)


class TestAtomicWrite:
    def test_replaces_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}
        assert list(tmp_path.iterdir()) == [path]


class TestValidateJob:
    def test_accepts_real_documents(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(spec())
        assert validate_job(record.to_document()) == []
        checkpoint = json.loads((store.job_dir(record.id) / "checkpoint.json").read_text())
        assert validate_job(checkpoint) == []

    def test_rejects_non_documents(self):
        assert validate_job(None)
        assert validate_job({"schema": "other/v9", "kind": "job"})
        assert validate_job({"schema": JOB_SCHEMA, "kind": "mystery"})

    def test_rejects_bad_job_fields(self, tmp_path):
        document = JobStore(tmp_path).submit(spec()).to_document()
        for corruption in (
            {"id": ""},
            {"priority": 0},
            {"state": "zombie"},
            {"created_at": "yesterday"},
            {"spec": {"digest": "zz"}},
        ):
            assert validate_job({**document, **corruption})

    def test_rejects_bad_checkpoint_progress(self):
        document = {
            "schema": JOB_SCHEMA,
            "kind": "checkpoint",
            "job": "job-1",
            "progress": {"total": 10, "completed": [[0, 5], [3, 8]], "found": []},
        }
        problems = validate_job(document)
        assert problems and "overlap" in problems[0]


class TestJobStoreLifecycle:
    def test_submit_creates_validated_layout(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit(spec(), priority=4)
        job_dir = store.job_dir(record.id)
        assert (job_dir / "job.json").exists()
        assert (job_dir / "checkpoint.json").exists()
        loaded = store.load(record.id)
        assert loaded.priority == 4 and loaded.state == "queued"
        assert store.load_progress(record.id).total == spec().space_size

    def test_fresh_ids_never_collide(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.submit(spec())
        second = store.submit(spec())
        assert first.id != second.id

    def test_duplicate_explicit_id_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(spec(), job_id="mine")
        with pytest.raises(ValueError, match="already exists"):
            store.submit(spec(), job_id="mine")

    def test_missing_job_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError, match="no job"):
            JobStore(tmp_path).load("nope")

    def test_legal_transitions(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(spec()).id
        for state in ("running", "paused", "queued", "running", "done"):
            assert store.set_state(job, state).state == state

    def test_illegal_transitions_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(spec()).id
        store.set_state(job, "done")
        for state in JOB_STATES:
            if state == "done":
                continue
            with pytest.raises(ValueError, match="cannot go"):
                store.set_state(job, state)

    def test_cancelled_and_failed_are_resumable(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(spec()).id
        store.set_state(job, "cancelled")
        assert store.set_state(job, "queued").state == "queued"
        store.set_state(job, "failed", "worker exploded")
        assert store.load(job).message == "worker exploded"
        assert store.set_state(job, "queued").state == "queued"

    def test_set_priority(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(spec()).id
        assert store.set_priority(job, 7).priority == 7
        with pytest.raises(ValueError):
            store.set_priority(job, 0)

    def test_jobs_lists_sorted(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(spec(), job_id="b")
        store.submit(spec(), job_id="a")
        assert [r.id for r in store.jobs()] == ["a", "b"]


class TestCheckpoints:
    def test_progress_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(spec()).id
        log = store.load_progress(job)
        log.mark_done(Interval(0, 500), matches=[(42, "key")])
        store.save_progress(job, log)
        restored = store.load_progress(job)
        assert restored.completed == [Interval(0, 500)]
        assert restored.found == [(42, "key")]
        assert restored.check_invariant()

    def test_garbage_checkpoint_raises_clearly(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(spec()).id
        (store.job_dir(job) / "checkpoint.json").write_text(
            json.dumps({"schema": JOB_SCHEMA, "kind": "checkpoint", "job": job,
                        "progress": {"total": 10, "completed": [[5, 2]], "found": []}})
        )
        with pytest.raises(CorruptCheckpointError, match="invalid"):
            store.load_progress(job)

    def test_checkpoint_writer_is_bound(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(spec()).id
        log = ProgressLog(total=spec().space_size)
        log.mark_done(Interval(0, 100))
        store.checkpoint_writer(job)(log)
        assert store.load_progress(job).done_count == 100


class TestMetricsAndEvents:
    def test_metrics_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(spec()).id
        assert store.load_metrics(job) is None
        store.save_metrics(job, {"schema": "repro-metrics/v1"})
        assert store.load_metrics(job)["schema"] == "repro-metrics/v1"

    def test_event_timeline_tails(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(spec()).id
        for i in range(5):
            store.append_event(job, f"tick {i}")
        tail = store.tail_events(job, count=3)
        assert len(tail) == 3
        assert tail[-1].endswith("tick 4")
