"""Tests for the security-assessment planner."""

import pytest

from repro.cluster import build_paper_network
from repro.core.planner import (
    Assessment,
    PasswordPolicy,
    assess,
    minimum_length_for,
    scaling_outlook,
)
from repro.keyspace import ALNUM_MIXED, ALPHA_LOWER, DIGITS


class TestPolicy:
    def test_space(self):
        policy = PasswordPolicy(ALNUM_MIXED, 1, 8)
        assert policy.space == 221_919_451_578_090

    def test_validation(self):
        with pytest.raises(ValueError):
            PasswordPolicy(DIGITS, 5, 3)


class TestAssess:
    def test_paper_cluster_vs_8_char_alnum(self):
        # The paper's own scenario: ~19 hours full scan on its cluster.
        policy = PasswordPolicy(ALNUM_MIXED, 1, 8)
        result = assess(policy, build_paper_network())
        assert 15 * 3600 < result.seconds_full_scan < 24 * 3600
        assert result.verdict == "weak"

    def test_raw_rate_attacker(self):
        policy = PasswordPolicy(DIGITS, 4, 4)  # a PIN
        result = assess(policy, 1e6)
        assert result.seconds_full_scan == pytest.approx(0.01)
        assert result.verdict == "broken"

    def test_verdict_bands(self):
        mk = lambda seconds: Assessment(
            PasswordPolicy(DIGITS, 1, 1), 1.0, seconds * 2, seconds
        )
        assert mk(1).verdict == "broken"
        assert mk(3600).verdict == "weak"
        assert mk(30 * 86400).verdict == "marginal"
        assert mk(100 * 365.25 * 86400).verdict == "resistant"

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            assess(PasswordPolicy(DIGITS, 1, 1), 0.0)


class TestMinimumLength:
    def test_against_the_paper_cluster(self):
        net = build_paper_network()
        # Lower-case-only passwords need to be longer than mixed alnum.
        need_lower = minimum_length_for(ALPHA_LOWER, net, resist_seconds=10 * 365.25 * 86400)
        need_alnum = minimum_length_for(ALNUM_MIXED, net, resist_seconds=10 * 365.25 * 86400)
        assert need_lower > need_alnum
        # And the returned length is minimal.
        shorter = PasswordPolicy(ALNUM_MIXED, need_alnum - 1, need_alnum - 1)
        assert assess(shorter, net).seconds_expected <= 10 * 365.25 * 86400

    def test_known_value_sanity(self):
        # At 3.25 Gkeys/s, ten years of resistance needs 12+ mixed alnum
        # chars (62**12 / 2 / 3.25e9 s ~ 15.7 kyears; 62**10 ~ 4 years).
        need = minimum_length_for(ALNUM_MIXED, 3.25e9, 10 * 365.25 * 86400)
        assert need == 11

    def test_unreachable(self):
        with pytest.raises(ValueError, match="no length"):
            minimum_length_for(DIGITS, 1e30, 1e9, max_considered=5)
        with pytest.raises(ValueError):
            minimum_length_for(DIGITS, 1e6, 0)


class TestScalingOutlook:
    def test_halves_per_doubling(self):
        policy = PasswordPolicy(ALNUM_MIXED, 10, 10)
        outlook = scaling_outlook(policy, 1e9, doublings=4)
        assert len(outlook) == 5
        for (k0, y0), (k1, y1) in zip(outlook, outlook[1:]):
            assert y1 == pytest.approx(y0 / 2)
