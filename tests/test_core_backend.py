"""Backend equivalence: every execution backend is the same search.

The contract: for a fixed target and interval, Serial/Thread/Process must
produce identical accepted ``(index, key)`` sets, identical tested counts,
and identical :class:`ProgressLog` coverage — the backend seam changes how
fast a host scans, never what it finds.
"""

import pytest

from repro.apps.cracking import CrackTarget, crack_interval
from repro.core.backend import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkUnit,
    execute_work_unit,
    measure_backend_throughput,
    resolve_backend,
)
from repro.core.progress import ProgressLog
from repro.cluster.local import LocalCluster
from repro.cluster.runtime import DistributedMaster, WorkerConfig
from repro.keyspace import Charset, Interval, split_interval

ABC = Charset("abc", name="abc")


def target_for(password="cab", **kw):
    kw.setdefault("min_length", 1)
    kw.setdefault("max_length", 4)
    return CrackTarget.from_password(password, ABC, **kw)


def make_backend(name):
    return resolve_backend(name, workers=2)


class TestWorkUnits:
    def test_unit_is_picklable(self):
        import pickle

        unit = WorkUnit(target_for(), Interval(3, 50), batch_size=16)
        clone = pickle.loads(pickle.dumps(unit))
        assert clone.interval == unit.interval
        assert clone.target.digest == unit.target.digest

    def test_execute_reports_counters(self):
        result = execute_work_unit(WorkUnit(target_for("ab"), Interval(0, 100), 32))
        assert result.tested == 100
        assert result.batches == 4  # 3 full batches of 32 + one partial
        assert result.worker
        assert result.keys_per_second > 0

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            WorkUnit(target_for(), Interval(0, 10), batch_size=0)


class TestEquivalence:
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_full_space_matches_reference(self, name):
        target = target_for("bca")
        interval = Interval(0, target.space_size)
        expected = crack_interval(target, interval)
        outcome = make_backend(name).run(
            target, split_interval(interval, 17), batch_size=64
        )
        assert outcome.found == expected
        assert outcome.tested == interval.size
        assert outcome.backend == name

    def test_identical_across_backends_with_salt(self):
        # Salted target exercises the generic (non-reversal) kernel too.
        target = target_for("cc", suffix=b"-salt")
        interval = Interval(0, target.space_size)
        chunks = split_interval(interval, 23)
        outcomes = [
            make_backend(name).run(target, chunks, batch_size=32)
            for name in sorted(BACKENDS)
        ]
        reference = outcomes[0]
        assert reference.keys  # really cracked it
        for outcome in outcomes[1:]:
            assert outcome.found == reference.found
            assert outcome.tested == reference.tested

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_progress_log_coverage_identical(self, name):
        target = target_for("abba")
        interval = Interval(0, target.space_size)
        chunks = split_interval(interval, 29)
        outcome = make_backend(name).run(target, chunks, batch_size=64)
        log = ProgressLog(total=interval.stop)
        # Chunks complete in nondeterministic order; coverage must not care.
        for chunk in chunks:
            hits = [(i, k) for i, k in outcome.found if i in chunk]
            log.mark_done(chunk, hits)
        assert log.is_complete
        assert log.check_invariant()
        assert log.found == outcome.found

    def test_local_cluster_same_answer_any_backend(self):
        target = target_for("cbb")
        results = {}
        for name in sorted(BACKENDS):
            outcome = LocalCluster(workers=2, batch_size=64, backend=name).crack(
                target, chunk_size=19
            )
            results[name] = outcome.found
            assert outcome.backend == name
        assert len({tuple(v) for v in results.values()}) == 1

    def test_local_cluster_adaptive_still_exact(self):
        target = target_for("ccca")
        outcome = LocalCluster(workers=2, batch_size=64, backend="thread").crack(
            target, chunk_size=13, adaptive=True
        )
        assert "ccca" in outcome.keys
        assert outcome.tested == target.space_size
        assert outcome.worker_throughput  # the tuning step measured X_j


class TestThroughputMeasurement:
    def test_measured_throughput_feeds_balance(self):
        from repro.cluster.balance import adaptive_chunk_size, tuned_from_measured

        target = target_for()
        measured = measure_backend_throughput(
            SerialBackend(), target, Interval(0, 60), batch_size=16
        )
        assert measured
        units = tuned_from_measured(measured, min_candidates=8)
        assert all(u.throughput > 0 for u in units)
        fastest = max(u.throughput for u in units)
        for unit in units:
            size = adaptive_chunk_size(1000, unit.throughput, fastest)
            assert 1 <= size <= 1000

    def test_adaptive_chunk_size_rule(self):
        from repro.cluster.balance import adaptive_chunk_size

        assert adaptive_chunk_size(1000, 50.0, 100.0) == 500
        assert adaptive_chunk_size(1000, 100.0, 100.0) == 1000
        assert adaptive_chunk_size(1000, 0.0, 100.0) == 1000  # unmeasured: full
        assert adaptive_chunk_size(10, 1.0, 1e9) == 1  # never zero
        with pytest.raises(ValueError):
            adaptive_chunk_size(0, 1.0, 1.0)


class TestRuntimeBackends:
    def test_worker_on_thread_backend_matches_serial(self):
        target = target_for("ccba")
        serial = DistributedMaster(
            target, [WorkerConfig("s")], chunk_size=31
        ).run()
        pooled = DistributedMaster(
            target,
            [WorkerConfig("t", backend="thread", pool_workers=2)],
            chunk_size=31,
        ).run()
        assert pooled.found == serial.found
        assert pooled.progress.is_complete

    def test_worker_death_requeues_onto_backend_workers(self):
        # One worker dies after 2 chunks; a thread-pool worker absorbs the
        # requeued intervals and coverage stays exactly-once.
        target = target_for("bcab")
        workers = [
            WorkerConfig("mortal", fail_after_chunks=2),
            WorkerConfig("pool", backend="thread", pool_workers=2),
        ]
        master = DistributedMaster(target, workers, chunk_size=17, reply_timeout=0.35)
        result = master.run()
        assert "bcab" in result.keys
        assert result.progress.is_complete
        assert result.progress.check_invariant()
        assert "mortal" in result.dead_workers
        assert result.requeued > 0
        assert result.found == crack_interval(target, Interval(0, target.space_size))

    def test_adaptive_master_measures_and_completes(self):
        target = target_for("ccc")
        workers = [
            WorkerConfig("fast"),
            WorkerConfig("slow", slowdown=0.004),
        ]
        result = DistributedMaster(
            target, workers, chunk_size=25, adaptive=True
        ).run()
        assert result.progress.is_complete
        assert set(result.worker_throughput) <= {"fast", "slow"}
        assert result.worker_throughput["fast"] > 0


class TestPreemption:
    """Cooperative chunk-boundary preemption: exactly-once, never half-done."""

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_gathered_and_unfinished_partition_the_chunks(self, name):
        target = target_for("ccba")
        chunks = split_interval(Interval(0, target.space_size), 16)
        seen = []
        outcome = make_backend(name).run(
            target,
            chunks,
            batch_size=32,
            preempt=lambda: len(seen) >= 3,
            on_result=lambda r: seen.append(r.interval),
        )
        gathered = set(seen)
        unfinished = set(outcome.unfinished)
        assert gathered | unfinished == set(chunks)
        assert not (gathered & unfinished)
        assert unfinished  # it really stopped early
        assert outcome.tested == sum(iv.size for iv in gathered)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_replaying_unfinished_recovers_the_full_search(self, name):
        target = target_for("abba")
        interval = Interval(0, target.space_size)
        chunks = split_interval(interval, 13)
        seen = []
        backend = make_backend(name)
        first = backend.run(
            target,
            chunks,
            batch_size=32,
            preempt=lambda: len(seen) >= 4,
            on_result=lambda r: seen.append(r.interval),
        )
        second = backend.run(target, first.unfinished, batch_size=32)
        combined = sorted(first.found + second.found)
        assert combined == crack_interval(target, interval)
        assert first.tested + second.tested == interval.size

    def test_on_result_streams_every_chunk_once(self):
        target = target_for("cab")
        chunks = split_interval(Interval(0, target.space_size), 11)
        log = ProgressLog(total=target.space_size)
        outcome = SerialBackend().run(
            target,
            chunks,
            batch_size=32,
            on_result=lambda r: log.mark_done(r.interval, r.matches),
        )
        assert log.is_complete  # mark_done would raise on any double report
        assert log.done_count == outcome.tested
        assert log.found == outcome.found

    def test_no_preempt_means_no_unfinished(self):
        target = target_for("ab")
        chunks = split_interval(Interval(0, target.space_size), 7)
        outcome = SerialBackend().run(target, chunks, batch_size=16)
        assert outcome.unfinished == []

    def test_stop_on_first_reports_undispatched_as_unfinished(self):
        target = target_for("aab")
        chunks = split_interval(Interval(0, target.space_size), 9)
        outcome = SerialBackend().run(
            target, chunks, batch_size=16, stop_on_first=True
        )
        assert outcome.found
        covered = sum(iv.size for iv in outcome.unfinished) + outcome.tested
        assert covered == target.space_size


class TestWarmPools:
    """The tentpole: pools persist across run() calls, spans batch chunks."""

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_pool_survives_across_runs(self, name):
        target = target_for("abb")
        chunks = split_interval(Interval(0, target.space_size), 9)
        with resolve_backend(name, workers=2, tuning=False) as backend:
            backend.run(target, chunks, batch_size=32)
            backend.run(target, chunks, batch_size=32)
            backend.run(target_for("bab"), chunks, batch_size=32)
            assert backend.pool_starts == 1  # one cold start, three runs

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_close_is_idempotent_and_reopens(self, name):
        target = target_for("ba")
        chunks = split_interval(Interval(0, target.space_size), 5)
        backend = resolve_backend(name, workers=2, tuning=False)
        backend.run(target, chunks, batch_size=16)
        backend.close()
        backend.close()
        # A fresh run after close() pays exactly one more cold start.
        outcome = backend.run(target, chunks, batch_size=16)
        assert outcome.found
        assert backend.pool_starts == 2
        backend.close()

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_gather_batch_reduces_spans(self, name):
        target = target_for("aab")
        chunks = split_interval(Interval(0, target.space_size), 12)
        with resolve_backend(name, workers=2, tuning=False) as backend:
            wide = backend.run(target, chunks, batch_size=32, gather_batch=4)
            narrow = backend.run(target, chunks, batch_size=32, gather_batch=1)
        assert wide.chunks == narrow.chunks == len(chunks)
        assert narrow.spans == len(chunks)
        assert wide.spans < narrow.spans
        assert wide.found == narrow.found

    def test_serial_spans_equal_chunks(self):
        target = target_for("ab")
        chunks = split_interval(Interval(0, target.space_size), 6)
        outcome = SerialBackend().run(target, chunks, batch_size=16)
        assert outcome.spans == outcome.chunks == len(chunks)


class TestWorkSpans:
    def _span(self, target, n_chunks=4, **kw):
        import hashlib
        import pickle

        from repro.core.backend import WorkSpan

        chunk = -(-target.space_size // n_chunks)
        chunks = split_interval(Interval(0, target.space_size), chunk)
        payload = pickle.dumps(target)
        return WorkSpan(
            token=hashlib.sha1(payload).hexdigest(),
            intervals=tuple((iv.start, iv.stop) for iv in chunks),
            batch_size=kw.get("batch_size", 32),
            payload=payload,
            stop_on_first=kw.get("stop_on_first", False),
        )

    def test_span_is_picklable(self):
        import pickle

        span = self._span(target_for("ab"))
        clone = pickle.loads(pickle.dumps(span))
        assert clone == span

    def test_execute_span_covers_every_chunk(self):
        from repro.core.backend import execute_work_span

        target = target_for("bca")
        span = self._span(target, n_chunks=5)
        results = execute_work_span(span)
        assert len(results) == len(span.intervals)
        assert sum(r.tested for r in results) == target.space_size
        found = sorted(m for r in results for m in r.matches)
        assert found == crack_interval(target, Interval(0, target.space_size))

    def test_stop_on_first_cuts_span_at_hit_chunk(self):
        from repro.core.backend import execute_work_span

        target = target_for("a")  # index 0: first chunk hits
        span = self._span(target, n_chunks=4, stop_on_first=True)
        results = execute_work_span(span)
        assert len(results) < 4  # later chunks never executed
        assert any(r.matches for r in results)


class TestEngineCache:
    def test_lru_keeps_engines_across_chunks_of_one_job(self):
        from repro.core.backend import engine_cache_stats

        target = target_for("abc")
        for iv in split_interval(Interval(0, target.space_size), 20):
            execute_work_unit(WorkUnit(target, iv, batch_size=32))
        stats = engine_cache_stats()
        # Six chunks of one (target, batch) job: one cache entry, not six.
        assert stats["keys"].count((target, 32)) == 1

    def test_lru_holds_multiple_jobs(self):
        from repro.core.backend import ENGINE_CACHE_SIZE, engine_cache_stats

        targets = [target_for(p) for p in ("ab", "ba", "cc")]
        for _ in range(2):  # interleave: a|b|c|a|b|c
            for target in targets:
                execute_work_unit(WorkUnit(target, Interval(0, 50), 16))
        stats = engine_cache_stats()
        assert len(stats["keys"]) <= ENGINE_CACHE_SIZE
        for target in targets:
            assert (target, 16) in stats["keys"]

    def test_lru_evicts_oldest_beyond_capacity(self):
        from repro.core.backend import ENGINE_CACHE_SIZE, engine_cache_stats

        first = target_for("aa")
        execute_work_unit(WorkUnit(first, Interval(0, 30), 8))
        for size in range(9, 9 + ENGINE_CACHE_SIZE):
            execute_work_unit(WorkUnit(target_for("ab"), Interval(0, 30), size))
        stats = engine_cache_stats()
        assert len(stats["keys"]) == ENGINE_CACHE_SIZE
        assert (first, 8) not in stats["keys"]


class TestResultBoard:
    def test_record_and_totals(self):
        from repro.core.shm import ResultBoard

        board = ResultBoard(workers=3)
        board.record(0, tested=100, batches=4, elapsed=0.5)
        board.record(1, tested=50, batches=2, elapsed=0.25)
        board.record(0, tested=100, batches=4, elapsed=0.5)
        totals = board.totals()
        assert totals["tested"] == 250
        assert totals["chunks"] == 3
        rates = board.per_slot_rates()
        assert rates[0] == pytest.approx(200.0)
        assert 2 not in rates  # idle slot reports nothing
        board.close()

    def test_shared_attach_round_trip(self):
        from repro.core.shm import ResultBoard

        board = ResultBoard(workers=2, shared=True)
        try:
            attached = ResultBoard.attach(board.name, workers=2)
            attached.record(1, tested=77, batches=3, elapsed=0.1)
            assert board.totals()["tested"] == 77
        finally:
            board.close()

    def test_reset_clears_between_runs(self):
        from repro.core.shm import ResultBoard

        board = ResultBoard(workers=2)
        board.record(0, tested=10, batches=1, elapsed=0.1)
        board.reset()
        assert board.totals()["tested"] == 0
        board.close()

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_backend_publishes_throughput(self, name):
        target = target_for("abb")
        chunks = split_interval(Interval(0, target.space_size), 8)
        with resolve_backend(name, workers=2, tuning=False) as backend:
            backend.run(target, chunks, batch_size=32)
            board = backend.board
            if board is None:  # process without fork: degraded, allowed
                return
            assert board.totals()["tested"] == target.space_size
