"""Tests for the unified run()/result API and end-to-end metrics capture."""

import pytest

from repro import (
    ALPHA_LOWER,
    CrackTarget,
    CrackingSession,
    Recorder,
    RunResult,
    SessionResult,
    validate_metrics,
)
from repro.cluster.fault import FaultPlan, run_with_faults
from repro.cluster.node import ClusterNode, GPUWorker
from repro.core.search import ExhaustiveSearch, keyspace_problem
from repro.keyspace import Charset
from repro.obs.schema import MetricNames

ABC = Charset("abc", name="abc")


def session() -> CrackingSession:
    target = CrackTarget.from_password("cab", ABC, min_length=1, max_length=4)
    return CrackingSession(target)


class TestRunDispatcher:
    @pytest.mark.parametrize("backend", ["sequential", "serial", "thread"])
    def test_every_backend_finds_the_same_password(self, backend):
        result = session().run(backend, workers=2)
        assert result.passwords == ["cab"]
        assert result.backend == backend
        assert result.tested == session().target.space_size
        assert result.elapsed > 0

    @pytest.mark.slow
    def test_process_backend_through_run(self):
        result = session().run("process", workers=2, stop_on_first=True)
        assert result.passwords == ["cab"]
        assert result.backend == "process"

    def test_stop_on_first_maps_to_sequential_stop_after(self):
        result = session().run("sequential", stop_on_first=True)
        assert result.passwords == ["cab"]
        assert result.tested < session().target.space_size

    def test_run_without_recorder_has_no_metrics(self):
        assert session().run("serial").metrics is None

    def test_removed_entry_points_raise_with_migration_hint(self):
        with pytest.raises(TypeError, match=r"run\(backend='sequential'\)"):
            session().run_sequential()
        with pytest.raises(TypeError, match=r"run\(backend=\.\.\., workers="):
            session().run_local(backend="serial")


class TestUnifiedResultSurface:
    def test_session_result_satisfies_run_result_protocol(self):
        result = session().run("serial")
        assert isinstance(result, SessionResult)
        assert isinstance(result, RunResult)
        with pytest.warns(DeprecationWarning, match="candidates_tested"):
            assert result.candidates_tested == result.tested  # deprecated alias

    def test_search_outcome_has_unified_fields(self):
        target = session().target
        problem = keyspace_problem(target.mapping, target.verify)
        outcome = ExhaustiveSearch(problem).run()
        assert isinstance(outcome, RunResult)
        assert outcome.found == outcome.accepted
        assert outcome.backend == "sequential"
        assert outcome.elapsed > 0
        assert outcome.metrics is None

    def test_mkeys_property_consistent_across_types(self):
        result = session().run("serial")
        assert result.mkeys_per_second == pytest.approx(
            result.tested / result.elapsed / 1e6
        )


class TestEndToEndMetrics:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_phases_and_worker_rates_recorded(self, backend):
        recorder = Recorder()
        result = session().run(backend, workers=2, recorder=recorder)
        assert result.passwords == ["cab"]
        document = result.metrics
        assert validate_metrics(document) == []
        span_names = {s["name"] for s in document["spans"]}
        assert {MetricNames.PHASE_SCATTER, MetricNames.PHASE_SEARCH,
                MetricNames.PHASE_GATHER} <= span_names
        rates = recorder.gauges_named(MetricNames.WORKER_KEYS_PER_SECOND)
        assert rates and all(rate > 0 for rate in rates.values())
        assert recorder.counter_total(MetricNames.BACKEND_TESTED) == result.tested

    @pytest.mark.slow
    def test_process_backend_ships_worker_timings_home(self):
        recorder = Recorder()
        result = session().run("process", workers=2, recorder=recorder)
        assert result.passwords == ["cab"]
        searches = [s for s in result.metrics["spans"]
                    if s["name"] == MetricNames.PHASE_SEARCH]
        assert searches and all(s["total"] > 0 for s in searches)

    def test_adaptive_run_records_probe_and_rebalance(self):
        recorder = Recorder()
        result = session().run("thread", workers=2, adaptive=True,
                               recorder=recorder)
        assert result.passwords == ["cab"]
        (event,) = recorder.events_named(MetricNames.EVENT_REBALANCE)
        assert event["fields"]["before"] > 0
        assert event["fields"]["after"] > 0
        probe = [s for s in result.metrics["spans"]
                 if s["name"] == MetricNames.PHASE_PROBE]
        assert len(probe) == 1

    def test_sequential_metrics_use_engine_names(self):
        recorder = Recorder()
        result = session().run("sequential", recorder=recorder)
        assert recorder.counter_total(MetricNames.ENGINE_TESTED) == result.tested
        assert recorder.counter_total(MetricNames.ENGINE_HITS) == 1


class TestFaultMetrics:
    """Satellite: a worker dying mid-interval must show up in the metrics."""

    @staticmethod
    def tree() -> ClusterNode:
        b = ClusterNode("B", devices=[GPUWorker("gpu-b", 4e6)])
        return ClusterNode("A", devices=[GPUWorker("gpu-a", 8e6)], children=[b])

    def test_mid_run_failure_recorded_and_result_still_exact(self):
        recorder = Recorder()
        plan = FaultPlan(failures={"B": 2})
        report = run_with_faults(
            self.tree(), 10_000_000, round_size=1_000_000, plan=plan,
            recorder=recorder,
        )
        assert report.covered_exactly  # correctness survives the failure
        assert report.requeued_candidates > 0
        assert recorder.counter_total(MetricNames.CLUSTER_CHUNKS_FAILED) >= 1
        assert (recorder.counter_total(MetricNames.CLUSTER_REQUEUED)
                == report.requeued_candidates)
        (dead,) = recorder.events_named(MetricNames.EVENT_WORKER_DEAD)
        assert dead["fields"] == {"worker": "B", "round": 2}
        requeues = recorder.events_named(MetricNames.EVENT_CHUNK_REQUEUED)
        assert requeues
        assert sum(e["fields"]["stop"] - e["fields"]["start"]
                   for e in requeues) == report.requeued_candidates
        assert validate_metrics(recorder.export()) == []

    def test_fault_free_run_records_nothing(self):
        recorder = Recorder()
        report = run_with_faults(
            self.tree(), 4_000_000, round_size=1_000_000, recorder=recorder
        )
        assert report.covered_exactly
        assert recorder.export()["events"] == []
