"""The vectorized engines must agree with hashlib on every lane."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashes import (
    Endian,
    md5_batch,
    md5_batch_hex,
    pack_single_block,
    sha1_batch,
    sha1_batch_hex,
    sha256_batch,
    sha256_batch_hex,
)
from repro.hashes.vec_sha256 import sha256_compress_batch
from repro.keyspace import ALNUM_MIXED, KeyMapping, batch_keys


def random_batch(rng, batch, length):
    return rng.integers(ord("!"), ord("~"), size=(batch, length), dtype=np.uint8)


class TestMD5Batch:
    def test_lanes_match_hashlib(self):
        rng = np.random.default_rng(1)
        chars = random_batch(rng, 64, 9)
        hexes = md5_batch_hex(pack_single_block(chars, Endian.LITTLE))
        for row, hexdigest in zip(chars, hexes):
            assert hexdigest == hashlib.md5(row.tobytes()).hexdigest()

    def test_output_shape_and_dtype(self):
        blocks = pack_single_block(np.zeros((5, 3), dtype=np.uint8), Endian.LITTLE)
        out = md5_batch(blocks)
        assert out.shape == (5, 4)
        assert out.dtype == np.uint32

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            md5_batch(np.zeros((5, 8), dtype=np.uint32))
        with pytest.raises(TypeError):
            md5_batch(np.zeros((5, 16), dtype=np.int64))

    def test_empty_batch(self):
        assert md5_batch(np.zeros((0, 16), dtype=np.uint32)).shape == (0, 4)

    @given(length=st.integers(0, 55), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_every_single_block_length(self, length, seed):
        rng = np.random.default_rng(seed)
        chars = random_batch(rng, 4, length)
        hexes = md5_batch_hex(pack_single_block(chars, Endian.LITTLE))
        for row, hexdigest in zip(chars, hexes):
            assert hexdigest == hashlib.md5(row.tobytes()).hexdigest()


class TestSHA1Batch:
    def test_lanes_match_hashlib(self):
        rng = np.random.default_rng(2)
        chars = random_batch(rng, 64, 11)
        hexes = sha1_batch_hex(pack_single_block(chars, Endian.BIG))
        for row, hexdigest in zip(chars, hexes):
            assert hexdigest == hashlib.sha1(row.tobytes()).hexdigest()

    def test_output_shape(self):
        blocks = pack_single_block(np.zeros((7, 3), dtype=np.uint8), Endian.BIG)
        assert sha1_batch(blocks).shape == (7, 5)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            sha1_batch(np.zeros((5, 15), dtype=np.uint32))
        with pytest.raises(TypeError):
            sha1_batch(np.zeros((5, 16), dtype=np.float64))

    @given(length=st.integers(0, 55), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_every_single_block_length(self, length, seed):
        rng = np.random.default_rng(seed)
        chars = random_batch(rng, 4, length)
        hexes = sha1_batch_hex(pack_single_block(chars, Endian.BIG))
        for row, hexdigest in zip(chars, hexes):
            assert hexdigest == hashlib.sha1(row.tobytes()).hexdigest()


class TestSHA256Batch:
    def test_lanes_match_hashlib(self):
        rng = np.random.default_rng(3)
        chars = random_batch(rng, 64, 13)
        hexes = sha256_batch_hex(pack_single_block(chars, Endian.BIG))
        for row, hexdigest in zip(chars, hexes):
            assert hexdigest == hashlib.sha256(row.tobytes()).hexdigest()

    def test_output_shape(self):
        blocks = pack_single_block(np.zeros((7, 3), dtype=np.uint8), Endian.BIG)
        assert sha256_batch(blocks).shape == (7, 8)

    def test_chained_state_for_shared_prefix(self):
        # The paper's long-key trick: cache the intermediate state of shared
        # leading blocks, then process only the final block per key.
        prefix = b"P" * 64  # exactly one block, shared by all candidates
        tails = [b"tail-one", b"tail-two"]
        # Shared-state path:
        from repro.hashes.padding import pad_message
        from repro.hashes.sha256 import SHA256_INIT, sha256_compress

        mid = sha256_compress(SHA256_INIT, pad_message(prefix + tails[0], Endian.BIG)[0])
        chars = np.stack([np.frombuffer(t, dtype=np.uint8) for t in tails])
        batch_mid = tuple(np.full(2, np.uint32(x), dtype=np.uint32) for x in mid)
        # Build final blocks: message is prefix+tail, so the final block is
        # the padded tail with total bit length 72 * 8.
        final_blocks = np.stack(
            [
                np.array(pad_message(prefix + t, Endian.BIG)[1], dtype=np.uint32)
                for t in tails
            ]
        )
        out = np.stack(sha256_compress_batch(final_blocks, state=batch_mid), axis=1)
        for row, tail in zip(out, tails):
            expected = hashlib.sha256(prefix + tail).hexdigest()
            assert row.astype(">u4").tobytes().hex() == expected


class TestEndToEndWithKeyspace:
    def test_generated_candidates_hash_correctly(self):
        mapping = KeyMapping(ALNUM_MIXED, 5, 5)
        segments = batch_keys(mapping, 10_000, 32)
        (_, _, chars), = segments
        hexes = md5_batch_hex(pack_single_block(chars, Endian.LITTLE))
        for i, hexdigest in enumerate(hexes):
            key = mapping.key_at(10_000 + i)
            assert hexdigest == hashlib.md5(key.encode()).hexdigest()
