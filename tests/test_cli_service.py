"""Tests for the service CLI: serve, jobs, and crack --checkpoint-dir."""

import hashlib
import json

from repro.cli import main
from repro.obs import validate_metrics
from repro.service import JobStore, validate_job


def digest_of(password: bytes) -> str:
    return hashlib.md5(password).hexdigest()


def submit_args(store, password=b"dog", *extra):
    return ["jobs", "submit", str(store), digest_of(password),
            "--charset", "lower", "--max-length", "3", "--chunk-size", "500", *extra]


class TestJobsSubmit:
    def test_submit_prints_id_and_persists(self, tmp_path, capsys):
        assert main(submit_args(tmp_path, b"dog", "--priority", "4")) == 0
        out = capsys.readouterr().out
        assert "submitted job-" in out and "priority 4" in out
        [record] = JobStore(tmp_path).jobs()
        assert record.priority == 4
        assert validate_job(record.to_document()) == []

    def test_bad_digest_returns_2(self, tmp_path, capsys):
        assert main(["jobs", "submit", str(tmp_path), "zz-not-hex"]) == 2
        assert "hexadecimal" in capsys.readouterr().err

    def test_duplicate_job_id_returns_2(self, tmp_path, capsys):
        assert main(submit_args(tmp_path, b"dog", "--job-id", "x")) == 0
        assert main(submit_args(tmp_path, b"dog", "--job-id", "x")) == 2
        assert "already exists" in capsys.readouterr().err


class TestServeAndStatus:
    def test_two_priorities_visible_in_status_from_the_store(self, tmp_path, capsys):
        # Endless jobs: fairness is visible in the persisted tested counts.
        def endless(priority, job_id):
            return ["jobs", "submit", str(tmp_path), digest_of(b"*none*"),
                    "--charset", "lower", "--max-length", "5",
                    "--chunk-size", "500", "--priority", priority,
                    "--job-id", job_id]

        assert main(endless("1", "low")) == 0
        assert main(endless("4", "high")) == 0
        assert main(["serve", str(tmp_path), "--max-rounds", "3",
                     "--quantum", "1000"]) == 0
        capsys.readouterr()
        assert main(["jobs", "status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        low = next(line for line in out.splitlines() if line.startswith("low"))
        high = next(line for line in out.splitlines() if line.startswith("high"))
        assert "3,000" in low and "12,000" in high  # 1:4, from checkpoints

    def test_serve_once_completes_and_status_reports_found(self, tmp_path, capsys):
        assert main(submit_args(tmp_path, b"cat", "--job-id", "findme")) == 0
        assert main(["serve", str(tmp_path), "--once", "--quantum", "20000"]) == 0
        out = capsys.readouterr().out
        assert "exited idle" in out and "done" in out
        assert main(["jobs", "status", str(tmp_path), "findme"]) == 0
        out = capsys.readouterr().out
        assert "done" in out and "FOUND: 'cat'" in out

    def test_serve_metrics_json_is_schema_valid(self, tmp_path, capsys):
        assert main(submit_args(tmp_path, b"cat")) == 0
        capsys.readouterr()
        assert main(["serve", str(tmp_path), "--once", "--quantum", "20000",
                     "--metrics", "json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out[out.index("{"): out.rindex("}") + 1])
        assert validate_metrics(document) == []

    def test_status_empty_store(self, tmp_path, capsys):
        assert main(["jobs", "status", str(tmp_path)]) == 1
        assert "no jobs" in capsys.readouterr().out

    def test_status_unknown_id_returns_3(self, tmp_path, capsys):
        assert main(["jobs", "status", str(tmp_path), "ghost"]) == 3
        assert "no job" in capsys.readouterr().err

    def test_status_single_job_metrics(self, tmp_path, capsys):
        assert main(submit_args(tmp_path, b"cat", "--job-id", "j")) == 0
        assert main(["serve", str(tmp_path), "--once", "--quantum", "20000"]) == 0
        capsys.readouterr()
        assert main(["jobs", "status", str(tmp_path), "j",
                     "--metrics", "summary"]) == 0
        assert "metrics (repro-metrics/v2)" in capsys.readouterr().out


class TestJobsControl:
    def test_pause_resume_cycle(self, tmp_path, capsys):
        assert main(submit_args(tmp_path, b"dog", "--job-id", "j")) == 0
        assert main(["jobs", "pause", str(tmp_path), "j"]) == 0
        assert JobStore(tmp_path).load("j").state == "paused"
        assert main(["jobs", "resume", str(tmp_path), "j"]) == 0
        assert JobStore(tmp_path).load("j").state == "queued"
        assert main(["serve", str(tmp_path), "--once", "--quantum", "20000"]) == 0
        assert JobStore(tmp_path).load("j").state == "done"

    def test_cancel_excludes_from_serve(self, tmp_path, capsys):
        assert main(submit_args(tmp_path, b"dog", "--job-id", "j")) == 0
        assert main(["jobs", "cancel", str(tmp_path), "j"]) == 0
        assert main(["serve", str(tmp_path), "--once"]) == 0
        assert JobStore(tmp_path).load("j").state == "cancelled"

    def test_illegal_transition_returns_2(self, tmp_path, capsys):
        assert main(submit_args(tmp_path, b"dog", "--job-id", "j")) == 0
        assert main(["serve", str(tmp_path), "--once", "--quantum", "20000"]) == 0
        assert main(["jobs", "pause", str(tmp_path), "j"]) == 2  # done job
        assert "cannot pause" in capsys.readouterr().err

    def test_tail_prints_timeline(self, tmp_path, capsys):
        assert main(submit_args(tmp_path, b"dog", "--job-id", "j")) == 0
        assert main(["serve", str(tmp_path), "--once", "--quantum", "20000"]) == 0
        capsys.readouterr()
        assert main(["jobs", "tail", str(tmp_path), "j"]) == 0
        out = capsys.readouterr().out
        assert "submitted" in out and "state -> done" in out

    def test_tail_unknown_job_returns_3(self, tmp_path, capsys):
        assert main(["jobs", "tail", str(tmp_path), "ghost"]) == 3


class TestCrackCheckpointDir:
    def args(self, store, password=b"fox", *extra):
        return ["crack", digest_of(password), "--charset", "lower",
                "--max-length", "3", "--checkpoint-dir", str(store),
                "--chunk-size", "700", *extra]

    def test_fresh_run_cracks_and_persists_done(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "FOUND: 'fox'" in out and "checkpointing under" in out
        [record] = JobStore(tmp_path).jobs()
        assert record.state == "done"
        checkpoint = json.loads(
            (JobStore(tmp_path).job_dir(record.id) / "checkpoint.json").read_text()
        )
        assert validate_job(checkpoint) == []

    def test_rerun_resumes_not_restarts(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        capsys.readouterr()
        assert main(self.args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "resuming job" in out
        assert "already complete" in out
        assert "FOUND: 'fox'" in out

    def test_changed_parameters_rejected(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        assert main(self.args(tmp_path, b"fox", "--batch-size", "64")) == 2
        assert "different parameters" in capsys.readouterr().err

    def test_miss_marks_done_and_returns_1(self, tmp_path, capsys):
        assert main(self.args(tmp_path, b"*not in space*")) == 1
        assert "no preimage" in capsys.readouterr().out
        [record] = JobStore(tmp_path).jobs()
        assert record.state == "done" and "0 found" in record.message

    def test_ntlm_checkpointing_rejected(self, tmp_path, capsys):
        from repro.apps.ntlm import ntlm_hex

        code = main(["crack", ntlm_hex("x"), "--algorithm", "ntlm",
                     "--checkpoint-dir", str(tmp_path)])
        assert code == 2
        assert "md5/sha1" in capsys.readouterr().err

    def test_adaptive_checkpointing_rejected(self, tmp_path, capsys):
        assert main(self.args(tmp_path, b"fox", "--adaptive")) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_metrics_land_in_the_store(self, tmp_path, capsys):
        assert main(self.args(tmp_path, b"fox", "--metrics", "json")) == 0
        [record] = JobStore(tmp_path).jobs()
        payload = JobStore(tmp_path).load_metrics(record.id)
        assert payload is not None and validate_metrics(payload) == []
