"""Tests for the whole-network DES (Table IX reproduction)."""

import pytest

from repro.cluster import ClusterNode, GPUWorker, LinkSpec, build_paper_network, simulate_run
from repro.keyspace import Interval
from repro.keyspace.intervals import is_exact_partition, merge_intervals
from repro.kernels.variants import HashAlgorithm

WORK = 62**8 // 1000  # a slice of the paper's <=8-alphanumeric space


class TestTableIX:
    def test_md5_network_throughput_and_efficiency(self):
        net = build_paper_network(HashAlgorithm.MD5)
        result = simulate_run(net, WORK)
        # Paper: 3258.4 Mkeys/s at 0.852 efficiency.
        assert result.mkeys_per_second == pytest.approx(3258.4, rel=0.05)
        assert result.network_efficiency == pytest.approx(0.852, abs=0.03)

    def test_sha1_network_throughput(self):
        net = build_paper_network(HashAlgorithm.SHA1)
        result = simulate_run(net, WORK)
        # Paper: 950.1 Mkeys/s at 0.898 efficiency (our SHA1 theoretical
        # model runs a bit low on Fermi, so efficiency lands higher).
        assert result.mkeys_per_second == pytest.approx(950.1, rel=0.07)
        assert 0.85 < result.network_efficiency < 1.0

    def test_dispatch_is_nearly_perfect_parallelism(self):
        # "an actual overall throughput that is roughly equal to the sum of
        # the throughputs of the single devices".
        net = build_paper_network(HashAlgorithm.MD5)
        result = simulate_run(net, WORK)
        assert result.dispatch_efficiency > 0.98


class TestSimulationMechanics:
    def small_net(self):
        link = LinkSpec(latency=1e-3, bandwidth=1e7)
        leaf = ClusterNode("leaf", devices=[GPUWorker("d2", 1e6)], uplink=link)
        return ClusterNode("root", devices=[GPUWorker("d1", 3e6)], children=[leaf])

    def test_work_conserved_and_tiled(self):
        net = self.small_net()
        total = 1_000_000
        result = simulate_run(net, total, round_size=100_000)
        assert sum(s.candidates for s in result.device_stats.values()) == total
        everything = [
            iv for s in result.device_stats.values() for iv in s.intervals
        ]
        assert is_exact_partition(Interval(0, total), merge_intervals(everything))

    def test_shares_proportional_to_throughput(self):
        net = self.small_net()
        result = simulate_run(net, 4_000_000, round_size=4_000_000)
        assert result.device_stats["d1"].candidates == pytest.approx(3_000_000, rel=0.01)
        assert result.device_stats["d2"].candidates == pytest.approx(1_000_000, rel=0.01)

    def test_rounds_counted(self):
        net = self.small_net()
        result = simulate_run(net, 1_000_000, round_size=300_000)
        assert result.rounds == 4

    def test_planted_solution_attributed_to_scanning_device(self):
        net = self.small_net()
        result = simulate_run(net, 4_000_000, round_size=4_000_000, solution_ids=(3_500_000,))
        # id 3.5M falls in the slow device's 25% tail share.
        assert result.found == [("d2", 3_500_000)]

    def test_multiple_solutions(self):
        net = self.small_net()
        result = simulate_run(
            net, 4_000_000, round_size=2_000_000, solution_ids=(10, 3_999_999)
        )
        assert [sol for _, sol in result.found] == [10, 3_999_999]

    def test_smaller_rounds_cost_efficiency(self):
        net = self.small_net()
        fine = simulate_run(net, 2_000_000, round_size=50_000)
        coarse = simulate_run(net, 2_000_000, round_size=2_000_000)
        assert fine.elapsed > coarse.elapsed
        assert fine.dispatch_efficiency < coarse.dispatch_efficiency

    def test_utilization_bounded(self):
        net = build_paper_network()
        result = simulate_run(net, WORK)
        for name in result.device_stats:
            assert 0.0 < result.utilization(name) <= 1.0

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            simulate_run(self.small_net(), 0)

    def test_deterministic(self):
        net = build_paper_network()
        a = simulate_run(net, WORK)
        b = simulate_run(net, WORK)
        assert a.elapsed == b.elapsed
        assert a.mkeys_per_second == b.mkeys_per_second


class TestHierarchyVsFlat:
    def test_hierarchy_costs_little(self):
        # The tree adds hops; the pattern's claim is the hierarchy is
        # essentially free for large enough intervals.
        from repro.cluster.topology import flat_network, paper_worker

        tree = build_paper_network(HashAlgorithm.MD5)
        flat = flat_network(
            [paper_worker(n, HashAlgorithm.MD5) for n in ("540M", "660", "550Ti", "8600M", "8800")]
        )
        t = simulate_run(tree, WORK)
        f = simulate_run(flat, WORK)
        assert t.throughput == pytest.approx(f.throughput, rel=0.02)
