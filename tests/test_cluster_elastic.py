"""Tests for elastic membership, multi-master sharding, and work stealing.

The acceptance bar of ROADMAP item 3: workers join a live run and
immediately receive rebalanced intervals; a master whose shard drains
steals ~half of a loaded sibling's pending spans over the real wire
messages; and no interleaving of steal / complete / duplicate-reply ever
double-counts a candidate id (first owner wins via ``subtract_interval``
on the shard board).
"""

import threading
import time

import pytest

from repro.apps.cracking import CrackTarget, crack_interval
from repro.cluster.elastic import (
    ACTIVE,
    EVICTED,
    LEFT,
    ElasticBackend,
    MemberRegistry,
    ShardBoard,
    ShardCoordinator,
)
from repro.cluster.health import HealthConfig
from repro.cluster.protocol import STEAL_GRANT_MAX_INTERVALS
from repro.cluster.runtime import (
    AllWorkersDeadError,
    DistributedMaster,
    InProcessTransport,
    PendingQueue,
    WorkerConfig,
)
from repro.keyspace import Charset, Interval
from repro.keyspace.intervals import merge_intervals, partition_evenly
from repro.obs import Recorder, validate_metrics
from repro.obs.schema import MetricNames

ABC = Charset("abc", name="abc")


def target_for(password="cab", **kw):
    kw.setdefault("min_length", 1)
    kw.setdefault("max_length", 4)
    return CrackTarget.from_password(password, ABC, **kw)


def fast_health(**kw):
    kw.setdefault("heartbeat_interval", 0.05)
    return HealthConfig(**kw)


class TestMemberRegistry:
    def test_first_join_is_newly_active(self):
        reg = MemberRegistry()
        assert reg.join("w0", now=1.0, rate=500, backend="serial") is True
        assert reg.join("w0", now=2.0) is False  # already active
        assert reg.is_active("w0")
        info = reg.get("w0")
        assert info.state == ACTIVE and info.rate_keys_per_s == 500
        assert info.joins == 1

    def test_leave_then_rejoin_counts_again(self):
        reg = MemberRegistry()
        reg.join("w0")
        reg.leave("w0", now=5.0, reason="drain")
        assert not reg.is_active("w0")
        assert reg.get("w0").state == LEFT
        assert reg.join("w0", now=6.0) is True  # rejoin is a fresh join
        assert reg.get("w0").joins == 2

    def test_eviction_is_terminal(self):
        reg = MemberRegistry()
        reg.join("w0")
        reg.evict("w0", now=3.0, reason="3 deaths")
        assert reg.is_evicted("w0")
        assert reg.join("w0") is False  # no re-admission, ever
        assert reg.get("w0").state == EVICTED
        reg.leave("w0")  # cannot soften an eviction into a leave
        assert reg.get("w0").state == EVICTED

    def test_evict_unknown_name_preemptively_bans(self):
        reg = MemberRegistry()
        reg.evict("mallory", reason="banned before arrival")
        assert reg.join("mallory") is False
        assert not reg.is_active("mallory")

    def test_active_lists_sorted_members(self):
        reg = MemberRegistry()
        for name in ("c", "a", "b"):
            reg.join(name)
        reg.leave("b")
        assert reg.active() == ["a", "c"]


class TestPendingQueue:
    def test_take_dispatches_from_the_head_in_order(self):
        q = PendingQueue([Interval(0, 10), Interval(20, 25)])
        assert q.take(7) == Interval(0, 7)
        assert q.take(7) == Interval(7, 10)
        assert q.take(7) == Interval(20, 25)
        assert q.take(7) is None
        assert not q

    def test_push_front_requeues_hot_work_first(self):
        q = PendingQueue([Interval(50, 60)])
        q.push_front([Interval(0, 5)])
        assert q.take(100) == Interval(0, 5)

    def test_steal_half_takes_from_the_tail(self):
        q = PendingQueue([Interval(0, 10), Interval(10, 20)])
        loot = q.steal_half()
        assert sum(iv.size for iv in loot) == 10
        # The tail span moved; the head stayed dispatchable by the owner.
        assert q.take(100) == Interval(0, 10)
        assert merge_intervals(loot) == [Interval(10, 20)]

    def test_steal_half_splits_a_single_span(self):
        q = PendingQueue([Interval(0, 100)])
        loot = q.steal_half()
        assert merge_intervals(loot) == [Interval(50, 100)]
        assert q.snapshot() == [Interval(0, 50)]

    def test_steal_half_respects_the_grant_span_cap(self):
        q = PendingQueue([Interval(i * 10, i * 10 + 1) for i in range(100)])
        loot = q.steal_half()
        assert len(loot) <= STEAL_GRANT_MAX_INTERVALS
        # Nothing stolen is still pending here.
        pending = q.snapshot()
        for iv in loot:
            assert all(not iv.overlaps(p) for p in pending)

    def test_steal_from_empty_queue_is_denied(self):
        assert PendingQueue().steal_half() == []

    def test_subtract_drops_covered_ids_everywhere(self):
        q = PendingQueue([Interval(0, 10), Interval(10, 20)])
        q.subtract(Interval(5, 15))
        assert q.total() == 10
        assert merge_intervals(q.snapshot()) == [Interval(0, 5), Interval(15, 20)]


class TestShardBoard:
    def test_rejects_a_leaky_partition(self):
        with pytest.raises(ValueError, match="tile"):
            ShardBoard(100, [Interval(0, 40), Interval(50, 100)])

    def test_claim_is_first_owner_wins(self):
        board = ShardBoard(100, partition_evenly(Interval(0, 100), 2))
        novel = board.claim(Interval(10, 30))
        assert merge_intervals(novel) == [Interval(10, 30)]
        # The exact same span again: already owned, nothing novel.
        assert board.claim(Interval(10, 30)) == []
        # Partial overlap: only the fresh tail comes back.
        assert merge_intervals(board.claim(Interval(20, 40))) == [Interval(30, 40)]

    def test_claim_routes_across_shard_boundaries(self):
        board = ShardBoard(100, partition_evenly(Interval(0, 100), 2))
        novel = board.claim(Interval(45, 55))
        assert merge_intervals(novel) == [Interval(45, 55)]
        assert board.shard_log(0).completed[-1].stop == 50
        assert board.done_count == 10

    def test_duplicate_claims_never_duplicate_matches(self):
        board = ShardBoard(100, partition_evenly(Interval(0, 100), 2))
        board.claim(Interval(0, 50), matches=((7, "abc"),))
        board.claim(Interval(0, 100), matches=((7, "abc"), (80, "zzz")))
        assert board.found == [(7, "abc"), (80, "zzz")]

    def test_complete_coverage_and_invariant(self):
        board = ShardBoard(120, partition_evenly(Interval(0, 120), 3))
        claimed = 0
        for piece in partition_evenly(Interval(0, 120), 7):
            claimed += sum(iv.size for iv in board.claim(piece))
        assert claimed == 120
        assert board.is_complete
        assert board.check_invariant()
        assert board.remaining() == []

    def test_on_match_fires_only_for_novel_matches(self):
        hits = []
        board = ShardBoard(
            100, [Interval(0, 100)], on_match=lambda: hits.append(1)
        )
        board.claim(Interval(0, 50), matches=((7, "abc"),))
        board.claim(Interval(0, 50), matches=((7, "abc"),))  # duplicate reply
        assert hits == [1]


class TestShardCoordinator:
    def test_two_masters_cover_the_space_exactly(self):
        target = target_for("ccba")
        coord = ShardCoordinator(
            target, masters=2, workers_per_master=2, chunk_size=9,
            health=fast_health(),
        )
        result = coord.run()
        assert "ccba" in result.keys
        assert result.tested == target.space_size
        assert result.progress.is_complete
        assert result.progress.check_invariant()
        assert result.masters == 2 and result.workers == 4

    def test_idle_master_steals_from_the_loaded_sibling(self):
        target = target_for("ccba", max_length=5)
        slow = [WorkerConfig("s0", slowdown=0.01)]
        fast = [WorkerConfig("f0"), WorkerConfig("f1")]
        rec = Recorder()
        coord = ShardCoordinator(
            target, masters=2, worker_configs=[slow, fast], chunk_size=9,
            stealing=True, health=fast_health(),
        )
        result = coord.run(recorder=rec)
        assert "ccba" in result.keys
        assert result.tested == target.space_size
        assert result.steals >= 1
        assert result.stolen_candidates > 0
        doc = rec.export()
        assert validate_metrics(doc) == []
        events = {e["name"] for e in doc["events"]}
        assert MetricNames.EVENT_STEAL_GRANTED in events
        grant = next(
            e for e in doc["events"]
            if e["name"] == MetricNames.EVENT_STEAL_GRANTED
        )
        assert grant["fields"]["thief"] != grant["fields"]["victim"]

    def test_stealing_disabled_still_covers_exactly(self):
        target = target_for("ccba")
        coord = ShardCoordinator(
            target, masters=2, workers_per_master=1, chunk_size=9,
            stealing=False, health=fast_health(),
        )
        result = coord.run()
        assert result.steals == 0 and result.stolen_candidates == 0
        assert result.tested == target.space_size
        assert "ccba" in result.keys

    def test_stop_on_first_preempts_the_other_lanes(self):
        target = target_for("ccba", max_length=5)
        coord = ShardCoordinator(
            target, masters=2, workers_per_master=1, chunk_size=9,
            health=fast_health(),
        )
        result = coord.run(stop_on_first=True)
        assert "ccba" in result.keys
        assert result.tested <= target.space_size

    def test_dead_lane_is_finished_by_the_survivor(self):
        target = target_for("ccba", max_length=5)
        # Lane 0's only worker dies after one chunk; lane 1 must steal
        # the leftovers, so the run still covers the space exactly.
        dying = [WorkerConfig("d0", fail_after_chunks=1)]
        healthy = [WorkerConfig("h0"), WorkerConfig("h1")]
        coord = ShardCoordinator(
            target, masters=2, worker_configs=[dying, healthy], chunk_size=9,
            stealing=True,
            health=fast_health(min_deadline=0.2, quarantine_period=0.3),
        )
        result = coord.run()
        assert "ccba" in result.keys
        assert result.progress.is_complete
        assert result.steals >= 1

    def test_validation(self):
        target = target_for()
        with pytest.raises(ValueError, match="at least one master"):
            ShardCoordinator(target, masters=0)
        with pytest.raises(ValueError, match="one list per master"):
            ShardCoordinator(target, masters=2, worker_configs=[[]])


class TestMidRunJoin:
    def test_workers_joining_a_live_run_receive_pending_work(self):
        target = target_for("ccccb", max_length=5)
        transport = InProcessTransport(
            [WorkerConfig("w0", slowdown=0.01)], heartbeat_interval=0.05
        )
        master = DistributedMaster(
            target, transport=transport, chunk_size=9, health=fast_health()
        )
        joined = []

        def joiner():
            time.sleep(0.1)
            for name in ("w1", "w2"):
                transport.add_worker(WorkerConfig(name))
                joined.append(name)

        thread = threading.Thread(target=joiner)
        thread.start()
        try:
            result = master.run()
        finally:
            thread.join()
        assert joined == ["w1", "w2"]
        assert "ccccb" in result.keys
        assert result.tested == target.space_size
        assert result.progress.is_complete
        # The joiners actually participated: they report throughput.
        assert set(result.worker_throughput) >= {"w1", "w2"}


class TestEviction:
    def test_repeated_deaths_cross_the_eviction_threshold(self):
        target = target_for("ccba", max_length=5)
        rec = Recorder()
        transport = InProcessTransport(
            [
                WorkerConfig("flaky", fail_after_chunks=1),
                WorkerConfig("steady"),
            ],
            heartbeat_interval=0.05,
        )
        master = DistributedMaster(
            target,
            transport=transport,
            chunk_size=9,
            health=fast_health(
                min_deadline=0.2, quarantine_period=0.3, evict_after_deaths=1
            ),
        )
        result = master.run(recorder=rec)
        assert "ccba" in result.keys
        assert result.tested == target.space_size
        assert result.evicted == ["flaky"]
        doc = rec.export()
        assert validate_metrics(doc) == []
        evictions = [
            e for e in doc["events"]
            if e["name"] == MetricNames.EVENT_MEMBER_EVICTED
        ]
        assert len(evictions) == 1
        assert evictions[0]["fields"]["worker"] == "flaky"

    def test_eviction_disabled_by_default(self):
        assert HealthConfig().evict_after_deaths == 0
        with pytest.raises(ValueError, match="evict_after_deaths"):
            HealthConfig(evict_after_deaths=-1)


class TestElasticBackend:
    def test_runs_scheduler_shaped_chunks_exactly(self):
        target = target_for("ccba")
        transport = InProcessTransport(
            [WorkerConfig("w0"), WorkerConfig("w1")], heartbeat_interval=0.05
        ).start()
        backend = ElasticBackend(
            transport, chunk_size=9, health=fast_health()
        )
        gathered = []
        try:
            chunks = partition_evenly(Interval(0, target.space_size), 5)
            outcome = backend.run(
                target, chunks, on_result=gathered.append
            )
        finally:
            backend.close()
        assert outcome.backend == "elastic"
        assert outcome.tested == target.space_size
        assert ("ccba" in dict(outcome.found).values()) or any(
            key == "ccba" for _i, key in outcome.found
        )
        assert outcome.unfinished == []
        # The relay streamed every covered piece to the gather hook.
        covered = merge_intervals([r.interval for r in gathered])
        assert covered == [Interval(0, target.space_size)]

    def test_holes_between_chunks_stay_untouched(self):
        target = target_for("ccba")
        transport = InProcessTransport(
            [WorkerConfig("w0")], heartbeat_interval=0.05
        ).start()
        backend = ElasticBackend(transport, chunk_size=9, health=fast_health())
        gathered = []
        try:
            chunks = [Interval(0, 30), Interval(60, 90)]
            outcome = backend.run(target, chunks, on_result=gathered.append)
        finally:
            backend.close()
        assert outcome.tested == 60
        assert outcome.unfinished == []
        covered = merge_intervals([r.interval for r in gathered])
        assert covered == chunks

    def test_all_workers_dead_does_not_leak_the_hull_log(self):
        target = target_for("ccba")
        transport = InProcessTransport(
            [WorkerConfig("w0", fail_after_chunks=0)], heartbeat_interval=0.05
        ).start()
        backend = ElasticBackend(
            transport,
            chunk_size=9,
            health=fast_health(min_deadline=0.2, quarantine_period=0.3),
        )
        try:
            with pytest.raises(AllWorkersDeadError) as exc_info:
                backend.run(target, [Interval(0, 30), Interval(60, 90)])
        finally:
            backend.close()
        # The scheduler must fall back to its own live-updated ledger,
        # never checkpoint the slice-local log with pre-marked holes.
        assert exc_info.value.progress is None
        assert exc_info.value.partial is None
