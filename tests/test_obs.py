"""Tests for the observability layer: recorder, schema, summary, clamping."""

import json
import threading

import pytest

from repro.cluster.balance import THROUGHPUT_FLOOR_RATIO, clamp_measured_throughput
from repro.obs import (
    NULL_RECORDER,
    MetricNames,
    NullRecorder,
    Recorder,
    render_summary,
    validate_metrics,
)


class TestRecorderPrimitives:
    def test_counter_accumulates_per_label_set(self):
        rec = Recorder()
        rec.counter("keys", 5, worker="a")
        rec.counter("keys", 7, worker="a")
        rec.counter("keys", 1, worker="b")
        assert rec.counter_value("keys", worker="a") == 12
        assert rec.counter_value("keys", worker="b") == 1
        assert rec.counter_total("keys") == 13
        assert rec.counter_value("keys", worker="never") == 0

    def test_gauge_last_write_wins(self):
        rec = Recorder()
        rec.gauge("x", 1.0, worker="a")
        rec.gauge("x", 9.0, worker="a")
        assert rec.gauges_named("x") == {"worker=a": 9.0}

    def test_span_context_manager_times(self):
        ticks = iter([0.0, 0.0, 2.5])  # epoch, start, stop
        rec = Recorder(clock=lambda: next(ticks))
        with rec.span("phase", backend="serial"):
            pass
        (row,) = rec.export()["spans"]
        assert row["name"] == "phase"
        assert row["count"] == 1
        assert row["total"] == pytest.approx(2.5)

    def test_span_record_folds_count_total_min_max(self):
        rec = Recorder()
        for seconds in (3.0, 1.0, 2.0):
            rec.span_record("phase", seconds)
        (row,) = rec.export()["spans"]
        assert (row["count"], row["total"]) == (3, 6.0)
        assert (row["min"], row["max"]) == (1.0, 3.0)

    def test_events_keep_order_and_fields(self):
        rec = Recorder()
        rec.event("rebalance", before=10, after=7)
        rec.event("worker.dead", worker="w1")
        assert [e["name"] for e in rec.export()["events"]] == [
            "rebalance", "worker.dead",
        ]
        (dead,) = rec.events_named("worker.dead")
        assert dead["fields"] == {"worker": "w1"}
        assert dead["time"] >= 0.0

    def test_thread_safety_under_contention(self):
        rec = Recorder()

        def hammer():
            for _ in range(1000):
                rec.counter("n")
                rec.span_record("s", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.counter_value("n") == 8000
        (span,) = rec.export()["spans"]
        assert span["count"] == 8000


class TestExportSchema:
    def test_export_validates_and_is_json_safe(self):
        rec = Recorder()
        rec.counter(MetricNames.ENGINE_TESTED, 42, backend="serial")
        rec.gauge(MetricNames.WORKER_KEYS_PER_SECOND, 1e6, worker="w0")
        rec.span_record(MetricNames.PHASE_SEARCH, 0.5, backend="serial")
        rec.event(MetricNames.EVENT_REBALANCE, before=8, after=4)
        document = rec.export()
        assert document["schema"] == "repro-metrics/v2"
        assert validate_metrics(document) == []
        assert json.loads(json.dumps(document)) == document

    def test_validator_rejects_malformed_documents(self):
        assert validate_metrics(None)
        assert validate_metrics({}) != []
        bad_schema = Recorder().export() | {"schema": "nope/v9"}
        assert any("schema" in p for p in validate_metrics(bad_schema))
        doc = Recorder().export()
        doc["counters"] = [{"name": "", "labels": {}, "value": 1}]
        assert any("name" in p for p in validate_metrics(doc))
        doc = Recorder().export()
        doc["spans"] = [{"name": "s", "labels": {}, "count": 1, "total": "x",
                         "min": 0, "max": 0}]
        assert any("total" in p for p in validate_metrics(doc))
        doc = Recorder().export()
        doc["events"] = [{"name": "e", "fields": {}}]  # missing time
        assert any("time" in p for p in validate_metrics(doc))

    def test_v2_rejects_unregistered_metric_names(self):
        doc = Recorder().export()
        assert doc["schema"] == "repro-metrics/v2"
        doc["counters"] = [{"name": "made.up", "labels": {}, "value": 1}]
        assert any("registered" in p for p in validate_metrics(doc))
        doc = Recorder().export()
        doc["events"] = [{"name": "made.up", "time": 0.0, "fields": {}}]
        assert any("registered" in p for p in validate_metrics(doc))

    def test_legacy_v1_documents_skip_the_registry(self):
        # Previously persisted exports (job stores, archived benchmark
        # artifacts) predate the registry and stay loadable.
        doc = Recorder().export()
        doc["schema"] = "repro-metrics/v1"
        doc["counters"] = [{"name": "made.up", "labels": {}, "value": 1}]
        assert validate_metrics(doc) == []

    def test_registry_covers_every_metric_constant(self):
        from repro.obs.schema import ALL_METRIC_NAMES

        constants = {
            value
            for key, value in vars(MetricNames).items()
            if not key.startswith("_") and isinstance(value, str)
        }
        assert constants == set(ALL_METRIC_NAMES)
        assert MetricNames.PHASE_SEARCH in ALL_METRIC_NAMES

    def test_null_recorder_records_nothing(self):
        rec = NullRecorder()
        rec.counter("n", 5)
        rec.gauge("g", 1.0)
        rec.span_record("s", 1.0)
        rec.event("e")
        with rec.span("s2"):
            pass
        document = rec.export()
        assert validate_metrics(document) == []
        assert document["counters"] == []
        assert document["spans"] == []
        assert document["events"] == []
        assert isinstance(NULL_RECORDER, NullRecorder)


class TestRenderSummary:
    def test_summary_shows_all_sections(self):
        rec = Recorder()
        rec.span_record(MetricNames.PHASE_SEARCH, 1.25, backend="serial")
        rec.gauge(MetricNames.WORKER_KEYS_PER_SECOND, 2e6, worker="w0")
        rec.counter(MetricNames.BACKEND_TESTED, 1000, backend="serial")
        rec.event(MetricNames.EVENT_WORKER_DEAD, worker="w1")
        text = render_summary(rec.export())
        assert "repro-metrics/v2" in text
        assert "phase.search{backend=serial}" in text
        assert "worker.keys_per_second" in text
        assert "backend.tested" in text
        assert "worker.dead worker=w1" in text

    def test_summary_of_empty_export_is_just_header(self):
        assert render_summary(Recorder().export()).splitlines() == [
            "metrics (repro-metrics/v2)"
        ]


class TestThroughputFloorClamp:
    def test_zero_rate_worker_is_clamped_with_warning(self):
        rec = Recorder()
        with pytest.warns(RuntimeWarning, match="clamp"):
            clamped = clamp_measured_throughput(
                {"fast": 1e6, "stalled": 0.0}, recorder=rec
            )
        assert clamped["fast"] == 1e6
        assert clamped["stalled"] == pytest.approx(1e6 * THROUGHPUT_FLOOR_RATIO)
        (event,) = rec.events_named(MetricNames.EVENT_THROUGHPUT_FLOOR)
        assert event["fields"]["worker"] == "stalled"

    def test_healthy_rates_pass_through_silently(self):
        measured = {"a": 1e6, "b": 5e5}
        assert clamp_measured_throughput(measured) == measured

    def test_degenerate_inputs(self):
        assert clamp_measured_throughput({}) == {}
        assert clamp_measured_throughput({"a": 0.0, "b": 0.0}) == {}
