"""Tests for the occupancy / grid-tail model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.device import PAPER_DEVICES
from repro.gpusim.occupancy import (
    OCCUPANCY_LIMITS,
    WARP_SIZE,
    grid_efficiency,
    limits_for,
    min_candidates_for_tail_efficiency,
    per_thread_for_duration,
    resident_warps,
    wave_capacity,
)


class TestResidentWarps:
    def test_full_occupancy_at_256_threads(self):
        # 256-thread blocks: 8 warps each; every family fills its cap.
        assert resident_warps(PAPER_DEVICES["8800"], 256) == 24
        assert resident_warps(PAPER_DEVICES["550Ti"], 256) == 48
        assert resident_warps(PAPER_DEVICES["660"], 256) == 64

    def test_small_blocks_limited_by_block_count(self):
        # 32-thread blocks: 1 warp each, capped at max blocks per MP.
        assert resident_warps(PAPER_DEVICES["8800"], 32) == 8
        assert resident_warps(PAPER_DEVICES["660"], 32) == 16

    def test_block_size_validation(self):
        dev = PAPER_DEVICES["660"]
        with pytest.raises(ValueError):
            resident_warps(dev, 0)
        with pytest.raises(ValueError):
            resident_warps(dev, 48)  # not a warp multiple
        with pytest.raises(ValueError):
            resident_warps(dev, 2048)

    def test_limits_catalog(self):
        for family, limits in OCCUPANCY_LIMITS.items():
            assert limits.max_warps_per_mp * WARP_SIZE >= limits.max_threads_per_block

    def test_limits_for_device(self):
        assert limits_for(PAPER_DEVICES["540M"]).max_warps_per_mp == 48


class TestWaves:
    def test_wave_capacity(self):
        dev = PAPER_DEVICES["660"]  # 5 MPs x 64 warps x 32 lanes
        assert wave_capacity(dev, 256) == 5 * 64 * 32
        assert wave_capacity(dev, 256, per_thread=100) == 5 * 64 * 32 * 100

    def test_per_thread_validation(self):
        with pytest.raises(ValueError):
            wave_capacity(PAPER_DEVICES["660"], 256, per_thread=0)

    def test_grid_efficiency_full_wave(self):
        dev = PAPER_DEVICES["660"]
        wave = wave_capacity(dev, 256)
        assert grid_efficiency(dev, wave) == 1.0
        assert grid_efficiency(dev, 3 * wave) == 1.0

    def test_grid_efficiency_tail_hurts(self):
        dev = PAPER_DEVICES["660"]
        wave = wave_capacity(dev, 256)
        assert grid_efficiency(dev, wave + 1) == pytest.approx((wave + 1) / (2 * wave))
        assert grid_efficiency(dev, 1) == pytest.approx(1 / wave)

    def test_zero_and_negative(self):
        dev = PAPER_DEVICES["660"]
        assert grid_efficiency(dev, 0) == 0.0
        with pytest.raises(ValueError):
            grid_efficiency(dev, -1)

    @given(candidates=st.integers(1, 10**9))
    @settings(max_examples=40)
    def test_property_efficiency_bounded(self, candidates):
        dev = PAPER_DEVICES["550Ti"]
        eff = grid_efficiency(dev, candidates)
        assert 0.0 < eff <= 1.0


class TestTuningHelpers:
    def test_min_candidates_meets_target(self):
        dev = PAPER_DEVICES["660"]
        n = min_candidates_for_tail_efficiency(dev, 0.95)
        # Worst case: n full waves plus a 1-candidate tail.
        assert grid_efficiency(dev, n + 1) >= 0.95
        with pytest.raises(ValueError):
            min_candidates_for_tail_efficiency(dev, 1.0)

    def test_faster_devices_need_bigger_grids(self):
        n660 = min_candidates_for_tail_efficiency(PAPER_DEVICES["660"], 0.95)
        n540 = min_candidates_for_tail_efficiency(PAPER_DEVICES["540M"], 0.95)
        assert n660 > n540

    def test_per_thread_for_duration(self):
        dev = PAPER_DEVICES["660"]
        per_thread = per_thread_for_duration(dev, kernel_mkeys=1841.0, duration_s=1.0)
        threads = dev.multiprocessors * resident_warps(dev, 256) * WARP_SIZE
        assert per_thread * threads == pytest.approx(1841e6, rel=0.01)
        with pytest.raises(ValueError):
            per_thread_for_duration(dev, 0, 1.0)
