"""Tests for the threaded distributed runtime (protocol + workers)."""

import pytest

from repro.apps.cracking import CrackTarget, crack_interval
from repro.cluster.protocol import (
    ControlMessage,
    GatherMessage,
    HeartbeatMessage,
    ScatterMessage,
    decode_any,
)
from repro.cluster.runtime import (
    AllWorkersDeadError,
    DistributedMaster,
    RuntimeResult,
    WorkerConfig,
)
from repro.core.progress import ProgressLog
from repro.keyspace import Charset, Interval

ABC = Charset("abc", name="abc")


def target_for(password="cab", **kw):
    kw.setdefault("min_length", 1)
    kw.setdefault("max_length", 4)
    return CrackTarget.from_password(password, ABC, **kw)


class TestConstruction:
    def test_validation(self):
        t = target_for()
        with pytest.raises(ValueError, match="at least one"):
            DistributedMaster(t, [])
        with pytest.raises(ValueError, match="duplicate"):
            DistributedMaster(t, [WorkerConfig("w"), WorkerConfig("w")])
        with pytest.raises(ValueError, match="chunk_size"):
            DistributedMaster(t, [WorkerConfig("w")], chunk_size=0)


class TestHappyPath:
    def test_single_worker_cracks(self):
        t = target_for("bca")
        master = DistributedMaster(t, [WorkerConfig("w0")], chunk_size=13)
        result = master.run()
        assert "bca" in result.keys
        assert result.progress.is_complete
        assert result.progress.check_invariant()
        assert result.dead_workers == []

    def test_three_heterogeneous_workers(self):
        t = target_for("ccba")
        workers = [
            WorkerConfig("fast", batch_size=1 << 12),
            WorkerConfig("mid", batch_size=256),
            WorkerConfig("slow", batch_size=64, slowdown=0.002),
        ]
        result = DistributedMaster(t, workers, chunk_size=7).run()
        assert "ccba" in result.keys
        assert result.progress.is_complete
        # Every candidate dispatched exactly once despite the heterogeneity.
        assert result.progress.done_count == t.space_size

    def test_matches_equal_local_engine(self):
        from repro.apps.cracking import crack_interval

        t = target_for("ab")
        result = DistributedMaster(t, [WorkerConfig("a"), WorkerConfig("b")], chunk_size=11).run()
        expected = crack_interval(t, Interval(0, t.space_size))
        assert result.found == expected

    def test_stop_on_first(self):
        t = target_for("a")  # very early id
        result = DistributedMaster(t, [WorkerConfig("w")], chunk_size=5).run(stop_on_first=True)
        assert "a" in result.keys
        assert not result.progress.is_complete  # dispatch stopped early

    def test_wire_accounting(self):
        t = target_for("ab")
        result = DistributedMaster(t, [WorkerConfig("w")], chunk_size=50).run()
        assert result.chunks == -(-t.space_size // 50)
        assert result.bytes_sent > 0
        assert result.bytes_received > 0
        # Mean message sizes respect the Section II budget by a wide margin.
        assert result.bytes_sent / result.chunks < 1024
        assert result.bytes_received / result.chunks < 1024


class TestFaultTolerance:
    def test_worker_death_requeues_and_completes(self):
        t = target_for("cccc")  # late id: the dead worker's loss matters
        # The mortal worker answers exactly one chunk; with far more chunks
        # than workers it is guaranteed to receive (and silently drop) a
        # second one, so the death is always observed.
        workers = [
            WorkerConfig("mortal", fail_after_chunks=1),
            WorkerConfig("survivor"),
        ]
        master = DistributedMaster(t, workers, chunk_size=11, reply_timeout=0.8)
        result = master.run()
        assert "cccc" in result.keys
        assert result.progress.is_complete
        assert "mortal" in result.dead_workers
        assert result.requeued > 0

    def test_all_workers_dead_raises(self):
        t = target_for()
        workers = [WorkerConfig("m1", fail_after_chunks=0)]
        master = DistributedMaster(t, workers, chunk_size=29, reply_timeout=0.3)
        with pytest.raises(RuntimeError, match="all workers died"):
            master.run()


class TestResume:
    def test_checkpoint_resume_skips_done_work(self):
        t = target_for("ccb")
        # Session 1: crack the first 60% with one worker, checkpoint.
        log = ProgressLog(total=t.space_size)
        cut = int(t.space_size * 0.6)
        m1 = DistributedMaster(t, [WorkerConfig("w")], chunk_size=17)
        r1 = m1.run(interval=Interval(0, cut), progress=log)
        snapshot = ProgressLog.from_json(log.to_json())
        assert not snapshot.is_complete
        # Session 2: resume over the whole space; only the gap is dispatched.
        m2 = DistributedMaster(t, [WorkerConfig("w2")], chunk_size=17)
        r2 = m2.run(progress=snapshot)
        assert snapshot.is_complete
        total_chunks_dispatched = r1.chunks + r2.chunks
        assert total_chunks_dispatched == pytest.approx(-(-t.space_size // 17), abs=2)
        assert "ccb" in (r1.keys + r2.keys)


class ScriptedTransport:
    """A fake transport that is also the master's clock.

    Every ``poll`` advances fake time by ``step`` and pops the next
    scripted delivery; ``send`` routes scatters to a per-test handler and
    records everything.  Heartbeats are auto-injected for every worker
    not in ``silenced``, so liveness behaves exactly as it would with
    real beacon threads — but deterministically.
    """

    def __init__(self, names, step=0.01, hb_every=0.1):
        self.names = list(names)
        self.step = step
        self.hb_every = hb_every
        self.now = 0.0
        self._next_hb = 0.0
        self.queue = []
        self.sent = []  # (worker, decoded message)
        self.silenced = set()
        self.on_scatter = None  # callback(worker, ScatterMessage)

    def clock(self):
        return self.now

    def start(self):
        return self

    def workers(self):
        return list(self.names)

    def close(self):
        pass

    def push_reply(self, worker, interval, matches=(), tested=None):
        self.queue.append(
            (
                worker,
                GatherMessage(
                    interval,
                    tested=interval.size if tested is None else tested,
                    elapsed_us=1000,
                    matches=tuple(matches),
                ).encode(),
            )
        )

    def send(self, worker, payload):
        msg = decode_any(payload)
        self.sent.append((worker, msg))
        if isinstance(msg, ScatterMessage) and self.on_scatter is not None:
            self.on_scatter(worker, msg)
        return True

    def poll(self, timeout):
        self.now += self.step
        if self.now >= self._next_hb:
            self._next_hb = self.now + self.hb_every
            for name in self.names:
                if name not in self.silenced:
                    self.queue.append(
                        (name, HeartbeatMessage(name, False, 0).encode())
                    )
        return self.queue.pop(0) if self.queue else None

    def cancels_to(self, worker):
        return [
            m
            for w, m in self.sent
            if w == worker and isinstance(m, ControlMessage) and m.command == "cancel"
        ]


class TestScriptedFaults:
    """Deterministic gather-loop behavior under scripted failures."""

    def make(self, transport, password="ccba", **kw):
        target = CrackTarget.from_password(password, ABC, min_length=1, max_length=4)
        kw.setdefault("chunk_size", 30)
        kw.setdefault("reply_timeout", 0.2)
        master = DistributedMaster(
            target, transport=transport, clock=transport.clock, **kw
        )
        return target, master

    def answer(self, target, transport, worker, msg):
        transport.push_reply(
            worker, msg.interval, matches=crack_interval(target, msg.interval)
        )

    def test_late_reply_is_idempotent(self):
        """A worker that blows its deadline and then answers anyway: the
        reply is accepted (once), counted late, and never crashes the
        loop — the historical interval-mismatch RuntimeError."""
        transport = ScriptedTransport(["a", "b"])
        target, master = self.make(transport)
        dropped = {}

        def on_scatter(worker, msg):
            if worker == "a" and not dropped:
                dropped["chunk"] = msg.interval  # swallow a's first chunk
                return
            if dropped.get("chunk") is not None and msg.interval == dropped["chunk"]:
                # The requeued chunk got re-dispatched; the original
                # holder's long-lost answer for it lands first, then the
                # new assignee's — the same candidates reported twice.
                transport.push_reply(
                    "a", dropped["chunk"],
                    matches=crack_interval(target, dropped["chunk"]),
                )
                dropped["chunk"] = None
            self.answer(target, transport, worker, msg)

        transport.on_scatter = on_scatter
        result = master.run()
        assert "ccba" in result.keys
        assert result.progress.is_complete
        assert result.progress.check_invariant()
        assert "a" in result.dead_workers
        assert result.requeued > 0
        assert result.late_replies >= 1
        assert result.duplicates >= 1

    def test_all_workers_dead_error_carries_partial_progress(self):
        """One chunk lands, then the only worker goes silent: the typed
        error exposes exactly what was covered before the collapse."""
        transport = ScriptedTransport(["solo"])
        target, master = self.make(transport)
        first = {}

        def on_scatter(worker, msg):
            if not first:
                first["chunk"] = msg.interval
                self.answer(target, transport, worker, msg)
            else:
                transport.silenced.add(worker)  # beacon stops mid-run

        transport.on_scatter = on_scatter
        with pytest.raises(AllWorkersDeadError) as info:
            master.run()
        exc = info.value
        assert isinstance(exc, RuntimeError)  # legacy callers still catch it
        assert exc.progress is not None
        assert exc.progress.done_count == first["chunk"].size
        assert exc.progress.remaining()  # keyspace really was left over
        assert isinstance(exc.partial, RuntimeResult)
        assert exc.partial.tested == first["chunk"].size

    def test_fallback_local_finishes_the_space(self):
        """Same collapse, but fallback="local": the remaining gaps are
        finished in-process and the run still succeeds."""
        transport = ScriptedTransport(["solo"])
        target, master = self.make(transport, fallback="local")
        first = {}

        def on_scatter(worker, msg):
            if not first:
                first["chunk"] = msg.interval
                self.answer(target, transport, worker, msg)
            else:
                transport.silenced.add(worker)

        transport.on_scatter = on_scatter
        result = master.run()
        assert result.fallback_used
        assert "ccba" in result.keys
        assert result.progress.is_complete
        assert result.progress.check_invariant()

    def test_stop_on_first_cancels_and_drains(self):
        """stop_on_first must actively cancel outstanding workers and
        return within the drain grace, not wait out their deadlines."""
        transport = ScriptedTransport(["fast", "slow"])
        target, master = self.make(transport, password="a", reply_timeout=60.0)

        def on_scatter(worker, msg):
            if worker == "fast":
                self.answer(target, transport, worker, msg)
            # slow never answers; its deadline is a full minute away.

        transport.on_scatter = on_scatter
        result = master.run(stop_on_first=True)
        assert "a" in result.keys
        assert not result.progress.is_complete
        assert result.cancels_sent >= 1
        assert transport.cancels_to("slow")
        # Returned within the cancel grace, nowhere near the 60s deadline.
        assert transport.now < 60.0

    def test_speculation_beats_a_straggler(self):
        """An idle worker gets a copy of the oldest straggler's chunk;
        first reply wins and the loser is cancelled, not failed."""
        transport = ScriptedTransport(["slug", "idle"])
        target, master = self.make(transport, reply_timeout=30.0)
        slug_chunk = {}

        def on_scatter(worker, msg):
            if worker == "slug" and not slug_chunk:
                slug_chunk["iv"] = msg.interval  # slug sits on it forever
                return
            self.answer(target, transport, worker, msg)

        transport.on_scatter = on_scatter
        result = master.run()
        assert result.progress.is_complete
        assert "ccba" in result.keys
        assert result.speculated >= 1
        assert result.speculative_wins >= 1
        # The straggler was cancelled by dedup, not declared dead.
        assert transport.cancels_to("slug")
        assert "slug" not in result.dead_workers


class TestDistributedNTLM:
    def test_ntlm_target_over_the_wire(self):
        from repro.apps.ntlm import NTLMTarget

        target = NTLMTarget.from_password("cba", ABC, max_length=4)
        result = DistributedMaster(
            target, [WorkerConfig("w1"), WorkerConfig("w2")], chunk_size=31
        ).run()
        assert "cba" in result.keys
        assert result.progress.is_complete

    def test_algorithm_tag_disambiguates_md5_vs_ntlm(self):
        # Same digest length, different algorithms: both must crack their
        # own planted key through the runtime.
        from repro.apps.cracking import CrackTarget
        from repro.apps.ntlm import NTLMTarget

        md5_t = CrackTarget.from_password("ab", ABC, min_length=1, max_length=2)
        ntlm_t = NTLMTarget.from_password("ab", ABC, max_length=2)
        assert len(md5_t.digest) == len(ntlm_t.digest) == 16
        assert md5_t.digest != ntlm_t.digest
        r1 = DistributedMaster(md5_t, [WorkerConfig("a")], chunk_size=7).run()
        r2 = DistributedMaster(ntlm_t, [WorkerConfig("b")], chunk_size=7).run()
        assert "ab" in r1.keys and "ab" in r2.keys
