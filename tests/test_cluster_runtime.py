"""Tests for the threaded distributed runtime (protocol + workers)."""

import pytest

from repro.apps.cracking import CrackTarget
from repro.cluster.runtime import DistributedMaster, WorkerConfig
from repro.core.progress import ProgressLog
from repro.keyspace import Charset, Interval

ABC = Charset("abc", name="abc")


def target_for(password="cab", **kw):
    kw.setdefault("min_length", 1)
    kw.setdefault("max_length", 4)
    return CrackTarget.from_password(password, ABC, **kw)


class TestConstruction:
    def test_validation(self):
        t = target_for()
        with pytest.raises(ValueError, match="at least one"):
            DistributedMaster(t, [])
        with pytest.raises(ValueError, match="duplicate"):
            DistributedMaster(t, [WorkerConfig("w"), WorkerConfig("w")])
        with pytest.raises(ValueError, match="chunk_size"):
            DistributedMaster(t, [WorkerConfig("w")], chunk_size=0)


class TestHappyPath:
    def test_single_worker_cracks(self):
        t = target_for("bca")
        master = DistributedMaster(t, [WorkerConfig("w0")], chunk_size=13)
        result = master.run()
        assert "bca" in result.keys
        assert result.progress.is_complete
        assert result.progress.check_invariant()
        assert result.dead_workers == []

    def test_three_heterogeneous_workers(self):
        t = target_for("ccba")
        workers = [
            WorkerConfig("fast", batch_size=1 << 12),
            WorkerConfig("mid", batch_size=256),
            WorkerConfig("slow", batch_size=64, slowdown=0.002),
        ]
        result = DistributedMaster(t, workers, chunk_size=7).run()
        assert "ccba" in result.keys
        assert result.progress.is_complete
        # Every candidate dispatched exactly once despite the heterogeneity.
        assert result.progress.done_count == t.space_size

    def test_matches_equal_local_engine(self):
        from repro.apps.cracking import crack_interval

        t = target_for("ab")
        result = DistributedMaster(t, [WorkerConfig("a"), WorkerConfig("b")], chunk_size=11).run()
        expected = crack_interval(t, Interval(0, t.space_size))
        assert result.found == expected

    def test_stop_on_first(self):
        t = target_for("a")  # very early id
        result = DistributedMaster(t, [WorkerConfig("w")], chunk_size=5).run(stop_on_first=True)
        assert "a" in result.keys
        assert not result.progress.is_complete  # dispatch stopped early

    def test_wire_accounting(self):
        t = target_for("ab")
        result = DistributedMaster(t, [WorkerConfig("w")], chunk_size=50).run()
        assert result.chunks == -(-t.space_size // 50)
        assert result.bytes_sent > 0
        assert result.bytes_received > 0
        # Mean message sizes respect the Section II budget by a wide margin.
        assert result.bytes_sent / result.chunks < 1024
        assert result.bytes_received / result.chunks < 1024


class TestFaultTolerance:
    def test_worker_death_requeues_and_completes(self):
        t = target_for("cccc")  # late id: the dead worker's loss matters
        # The mortal worker answers exactly one chunk; with far more chunks
        # than workers it is guaranteed to receive (and silently drop) a
        # second one, so the death is always observed.
        workers = [
            WorkerConfig("mortal", fail_after_chunks=1),
            WorkerConfig("survivor"),
        ]
        master = DistributedMaster(t, workers, chunk_size=11, reply_timeout=0.8)
        result = master.run()
        assert "cccc" in result.keys
        assert result.progress.is_complete
        assert "mortal" in result.dead_workers
        assert result.requeued > 0

    def test_all_workers_dead_raises(self):
        t = target_for()
        workers = [WorkerConfig("m1", fail_after_chunks=0)]
        master = DistributedMaster(t, workers, chunk_size=29, reply_timeout=0.3)
        with pytest.raises(RuntimeError, match="all workers died"):
            master.run()


class TestResume:
    def test_checkpoint_resume_skips_done_work(self):
        t = target_for("ccb")
        # Session 1: crack the first 60% with one worker, checkpoint.
        log = ProgressLog(total=t.space_size)
        cut = int(t.space_size * 0.6)
        m1 = DistributedMaster(t, [WorkerConfig("w")], chunk_size=17)
        r1 = m1.run(interval=Interval(0, cut), progress=log)
        snapshot = ProgressLog.from_json(log.to_json())
        assert not snapshot.is_complete
        # Session 2: resume over the whole space; only the gap is dispatched.
        m2 = DistributedMaster(t, [WorkerConfig("w2")], chunk_size=17)
        r2 = m2.run(progress=snapshot)
        assert snapshot.is_complete
        total_chunks_dispatched = r1.chunks + r2.chunks
        assert total_chunks_dispatched == pytest.approx(-(-t.space_size // 17), abs=2)
        assert "ccb" in (r1.keys + r2.keys)


class TestDistributedNTLM:
    def test_ntlm_target_over_the_wire(self):
        from repro.apps.ntlm import NTLMTarget

        target = NTLMTarget.from_password("cba", ABC, max_length=4)
        result = DistributedMaster(
            target, [WorkerConfig("w1"), WorkerConfig("w2")], chunk_size=31
        ).run()
        assert "cba" in result.keys
        assert result.progress.is_complete

    def test_algorithm_tag_disambiguates_md5_vs_ntlm(self):
        # Same digest length, different algorithms: both must crack their
        # own planted key through the runtime.
        from repro.apps.cracking import CrackTarget
        from repro.apps.ntlm import NTLMTarget

        md5_t = CrackTarget.from_password("ab", ABC, min_length=1, max_length=2)
        ntlm_t = NTLMTarget.from_password("ab", ABC, max_length=2)
        assert len(md5_t.digest) == len(ntlm_t.digest) == 16
        assert md5_t.digest != ntlm_t.digest
        r1 = DistributedMaster(md5_t, [WorkerConfig("a")], chunk_size=7).run()
        r2 = DistributedMaster(ntlm_t, [WorkerConfig("b")], chunk_size=7).run()
        assert "ab" in r1.keys and "ab" in r2.keys
