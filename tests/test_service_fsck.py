"""``repro fsck``: clean stores stay clean, corruption is always caught.

The two acceptance properties from the issue:

* fsck never flags a store a healthy service produced (so operators can
  trust a clean report), and
* fsck detects 100% of deliberately corrupted records, repairing
  checkpoints from the last consistent generation where one survives.
"""

import hashlib
import json

import pytest

from repro.cli import main
from repro.core.progress import CorruptCheckpointError
from repro.keyspace import Interval
from repro.service import JobSpec, JobStore, fsck_store, validate_fsck_report
from repro.service.fsck import FSCK_SCHEMA


def spec(password=b"dog"):
    return JobSpec(
        digest=hashlib.md5(password).digest(), charset="abcdefgo", max_length=3
    )


def make_store(root, jobs=3):
    store = JobStore(root)
    records = []
    for i in range(jobs):
        records.append(store.submit(spec(bytes([65 + i])), job_id=f"job-{i}"))
    return store, records


def advance(store, job_id, upto=10):
    """Write a second checkpoint generation with real coverage."""
    log = store.load_progress(job_id)
    log.mark_done(Interval(log.done_count, upto))
    store.save_progress(job_id, log)
    return log


class TestCleanStore:
    def test_fresh_store_is_clean(self, tmp_path):
        make_store(tmp_path / "store")
        report = fsck_store(tmp_path / "store")
        assert validate_fsck_report(report) == []
        assert report["schema"] == "repro-fsck/v1"
        assert report["clean"] is True
        assert report["findings"] == []
        assert report["scanned"] == 3

    def test_store_with_history_is_clean(self, tmp_path):
        # Multiple checkpoint generations + metrics: still zero findings.
        store, _ = make_store(tmp_path / "store")
        advance(store, "job-0")
        advance(store, "job-0", upto=20)
        store.save_metrics("job-1", {"schema": "repro-metrics/v2"})
        assert (tmp_path / "store" / "job-0" / "checkpoint.prev.json").exists()
        report = fsck_store(tmp_path / "store")
        assert report["clean"] is True

    def test_missing_store_scans_nothing(self, tmp_path):
        report = fsck_store(tmp_path / "nowhere")
        assert report["clean"] is True
        assert report["scanned"] == 0

    def test_scan_mode_never_touches_disk(self, tmp_path):
        store, _ = make_store(tmp_path / "store", jobs=1)
        path = tmp_path / "store" / "job-0" / "checkpoint.json"
        path.write_text("{ torn")
        before = sorted(p.relative_to(tmp_path) for p in tmp_path.rglob("*"))
        report = fsck_store(tmp_path / "store", repair=False)
        after = sorted(p.relative_to(tmp_path) for p in tmp_path.rglob("*"))
        assert not report["clean"]
        assert all(f["action"] == "none" for f in report["findings"])
        assert before == after


class TestDetection:
    """Every deliberate corruption produces a finding (100% detection)."""

    CORRUPTIONS = {
        "truncated_checkpoint": ("checkpoint.json", "{ \"schema\": \"repro-j"),
        "empty_checkpoint": ("checkpoint.json", ""),
        "non_object_checkpoint": ("checkpoint.json", "[1, 2, 3]"),
        "truncated_job": ("job.json", "{ \"id\": "),
        "binary_job": ("job.json", "\x00\xff garbage"),
        "truncated_metrics": ("metrics.json", "{ \"schema"),
    }

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_corruption_is_detected(self, tmp_path, name):
        store, _ = make_store(tmp_path / "store", jobs=1)
        store.save_metrics("job-0", {"schema": "repro-metrics/v2"})
        filename, payload = self.CORRUPTIONS[name]
        (tmp_path / "store" / "job-0" / filename).write_text(payload)
        report = fsck_store(tmp_path / "store")
        assert not report["clean"]
        assert any(f["path"].endswith(filename) for f in report["findings"])

    def test_checksum_mismatch_is_detected(self, tmp_path):
        # Valid JSON, valid progress — but the sha256 does not match: the
        # torn-write case a plain parse would miss.
        store, _ = make_store(tmp_path / "store", jobs=1)
        path = tmp_path / "store" / "job-0" / "checkpoint.json"
        document = json.loads(path.read_text())
        document["progress"]["completed"] = [[0, 5]]
        path.write_text(json.dumps(document))
        with pytest.raises(CorruptCheckpointError, match="progress_sha256"):
            store.load_progress("job-0")
        report = fsck_store(tmp_path / "store")
        assert any("progress_sha256" in f["problem"] for f in report["findings"])

    def test_wrong_owner_checkpoint_is_detected(self, tmp_path):
        store, _ = make_store(tmp_path / "store", jobs=2)
        src = tmp_path / "store" / "job-0" / "checkpoint.json"
        (tmp_path / "store" / "job-1" / "checkpoint.json").write_text(src.read_text())
        report = fsck_store(tmp_path / "store")
        assert any(
            f["job"] == "job-1" and "belongs to job" in f["problem"]
            for f in report["findings"]
        )

    def test_orphan_tmp_and_orphan_dir_are_detected(self, tmp_path):
        store, _ = make_store(tmp_path / "store", jobs=1)
        (tmp_path / "store" / "job-0" / "checkpoint.json.tmp").write_text("{ half")
        orphan = tmp_path / "store" / "job-orphan"
        orphan.mkdir()
        (orphan / "checkpoint.json").write_text("{}")
        report = fsck_store(tmp_path / "store")
        artifacts = {f["artifact"] for f in report["findings"]}
        assert "tmp" in artifacts
        assert any(
            f["job"] == "job-orphan" and "missing job.json" in f["problem"]
            for f in report["findings"]
        )

    def test_missing_checkpoint_is_detected(self, tmp_path):
        store, _ = make_store(tmp_path / "store", jobs=1)
        (tmp_path / "store" / "job-0" / "checkpoint.json").unlink()
        report = fsck_store(tmp_path / "store")
        assert any(f["artifact"] == "checkpoint" for f in report["findings"])


class TestRepair:
    def test_repairs_checkpoint_from_previous_generation(self, tmp_path):
        store, _ = make_store(tmp_path / "store", jobs=1)
        advance(store, "job-0", upto=10)
        advance(store, "job-0", upto=25)  # prev now holds the upto=10 state
        prev_digest = json.loads(
            (tmp_path / "store" / "job-0" / "checkpoint.prev.json").read_text()
        )["progress_sha256"]
        (tmp_path / "store" / "job-0" / "checkpoint.json").write_text("{ torn")

        report = fsck_store(tmp_path / "store", repair=True)
        assert report["repaired"] == 1
        restored = store.load_progress("job-0")
        assert restored.digest() == prev_digest
        assert restored.done_count == 10  # the last consistent generation
        # The corrupt original is preserved for post-mortem, not deleted.
        quarantined = list((tmp_path / "store" / ".quarantine").iterdir())
        assert any("job-0.checkpoint.json" in p.name for p in quarantined)
        # A second pass over the repaired store is clean.
        assert fsck_store(tmp_path / "store")["clean"] is True

    def test_no_previous_generation_means_fresh_checkpoint(self, tmp_path):
        store, _ = make_store(tmp_path / "store", jobs=1)
        (tmp_path / "store" / "job-0" / "checkpoint.json").write_text("not json")
        report = fsck_store(tmp_path / "store", repair=True)
        assert report["quarantined"] == 1
        restored = store.load_progress("job-0")
        assert restored.done_count == 0  # coverage restarts; correctness holds
        assert restored.total == spec().space_size
        assert fsck_store(tmp_path / "store")["clean"] is True

    def test_corrupt_job_record_quarantines_the_directory(self, tmp_path):
        store, _ = make_store(tmp_path / "store", jobs=2)
        (tmp_path / "store" / "job-0" / "job.json").write_text("{ broken")
        report = fsck_store(tmp_path / "store", repair=True)
        assert report["quarantined"] == 1
        assert not (tmp_path / "store" / "job-0").exists()
        assert (tmp_path / "store" / ".quarantine" / "job-0" / "job.json").exists()
        assert [r.id for r in store.jobs()] == ["job-1"]
        assert fsck_store(tmp_path / "store")["clean"] is True

    def test_orphans_and_metrics_are_removed(self, tmp_path):
        store, _ = make_store(tmp_path / "store", jobs=1)
        job_dir = tmp_path / "store" / "job-0"
        (job_dir / "checkpoint.json.tmp").write_text("{ half")
        (job_dir / "metrics.json").write_text("{ torn metrics")
        report = fsck_store(tmp_path / "store", repair=True)
        assert report["removed"] == 2
        assert not (job_dir / "checkpoint.json.tmp").exists()
        assert not (job_dir / "metrics.json").exists()
        assert fsck_store(tmp_path / "store")["clean"] is True

    def test_corrupt_previous_generation_is_removed(self, tmp_path):
        store, _ = make_store(tmp_path / "store", jobs=1)
        advance(store, "job-0")
        (tmp_path / "store" / "job-0" / "checkpoint.prev.json").write_text("junk")
        report = fsck_store(tmp_path / "store", repair=True)
        assert any(f["artifact"] == "checkpoint_prev" for f in report["findings"])
        assert not (tmp_path / "store" / "job-0" / "checkpoint.prev.json").exists()
        assert fsck_store(tmp_path / "store")["clean"] is True

    def test_repair_is_idempotent(self, tmp_path):
        store, _ = make_store(tmp_path / "store", jobs=2)
        (tmp_path / "store" / "job-0" / "checkpoint.json").write_text("{ torn")
        (tmp_path / "store" / "job-1" / "job.json").write_text("junk")
        first = fsck_store(tmp_path / "store", repair=True)
        assert not first["clean"]
        second = fsck_store(tmp_path / "store", repair=True)
        assert second["clean"] is True


class TestReportSchema:
    def test_reports_validate(self, tmp_path):
        store, _ = make_store(tmp_path / "store", jobs=1)
        (tmp_path / "store" / "job-0" / "checkpoint.json").write_text("x")
        for repair in (False, True):
            report = fsck_store(tmp_path / "store", repair=repair)
            assert validate_fsck_report(report) == []

    def test_schema_string_is_versioned(self):
        assert FSCK_SCHEMA == "repro-fsck/v1"

    def test_validator_rejects_malformed_reports(self):
        assert validate_fsck_report("nope") == ["fsck report must be an object"]
        assert any(
            "schema" in p for p in validate_fsck_report({"schema": "wrong/v9"})
        )
        report = {
            "schema": FSCK_SCHEMA, "store": "s", "scanned": 1, "clean": True,
            "findings": [{"job": "j", "artifact": "job", "path": "p",
                          "problem": "x", "action": "none"}],
            "repaired": 0, "quarantined": 0, "removed": 0,
        }
        assert any("clean is true" in p for p in validate_fsck_report(report))
        report["clean"] = False
        assert validate_fsck_report(report) == []
        report["findings"][0]["artifact"] = "bogus"
        assert any("artifact" in p for p in validate_fsck_report(report))
        report["scanned"] = True  # bools are not counts
        assert any("scanned" in p for p in validate_fsck_report(report))


class TestFsckCli:
    def test_clean_store_exits_zero(self, tmp_path, capsys):
        make_store(tmp_path / "store", jobs=1)
        assert main(["fsck", str(tmp_path / "store")]) == 0
        assert "store is clean" in capsys.readouterr().out

    def test_strict_flags_findings_with_exit_one(self, tmp_path, capsys):
        make_store(tmp_path / "store", jobs=1)
        (tmp_path / "store" / "job-0" / "checkpoint.json").write_text("{ torn")
        assert main(["fsck", str(tmp_path / "store")]) == 0  # scan only reports
        assert main(["fsck", str(tmp_path / "store"), "--strict"]) == 1
        out = capsys.readouterr().out
        assert "checkpoint" in out

    def test_repair_then_strict_is_clean(self, tmp_path):
        make_store(tmp_path / "store", jobs=1)
        (tmp_path / "store" / "job-0" / "checkpoint.json").write_text("{ torn")
        assert main(["fsck", str(tmp_path / "store"), "--repair"]) == 0
        assert main(["fsck", str(tmp_path / "store"), "--strict"]) == 0

    def test_json_output_is_a_valid_report(self, tmp_path, capsys):
        make_store(tmp_path / "store", jobs=1)
        assert main(["fsck", str(tmp_path / "store"), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert validate_fsck_report(report) == []

    def test_usage_error_without_a_store(self, capsys):
        assert main(["fsck", ""]) == 2
