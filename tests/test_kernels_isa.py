"""Tests for instruction classes and mixes."""

import pytest

from repro.kernels import InstructionClass, InstructionMix
from repro.kernels.isa import SHIFT_MAD_CLASSES, SourceMix, SourceOp, merge_mixes


class TestInstructionMix:
    def test_of_constructor_and_getitem(self):
        mix = InstructionMix.of(IADD=3, LOP=2)
        assert mix[InstructionClass.IADD] == 3
        assert mix[InstructionClass.LOP] == 2
        assert mix[InstructionClass.SHIFT] == 0

    def test_zero_entries_dropped(self):
        mix = InstructionMix.of(IADD=1, SHIFT=0)
        assert InstructionClass.SHIFT not in mix.counts

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            InstructionMix.of(IADD=-1)

    def test_addition(self):
        a = InstructionMix.of(IADD=1, LOP=2)
        b = InstructionMix.of(IADD=3, SHIFT=4)
        merged = a + b
        assert merged[InstructionClass.IADD] == 4
        assert merged[InstructionClass.LOP] == 2
        assert merged[InstructionClass.SHIFT] == 4

    def test_scaled(self):
        mix = InstructionMix.of(IADD=10, SHIFT=5).scaled(0.5)
        assert mix[InstructionClass.IADD] == 5
        assert mix[InstructionClass.SHIFT] in (2, 3)  # banker's rounding

    def test_totals_and_ports(self):
        mix = InstructionMix.of(IADD=150, LOP=120, SHIFT=43, IMAD=43, PRMT=3)
        assert mix.total == 359
        assert mix.additions == 150
        assert mix.logicals == 120
        assert mix.shift_mad == 89
        assert mix.add_lop == 270

    def test_paper_ratio_R(self):
        # Section V-B: "the ratio between addition/logical operations and
        # shift/MAD operations is R = 270/92 = 2.93" for Table V counts.
        mix = InstructionMix.of(IADD=150, LOP=120, SHIFT=46, IMAD=46)
        assert mix.ratio_addlop_to_shiftmad == pytest.approx(270 / 92, abs=0.01)

    def test_ratio_infinite_without_shifts(self):
        assert InstructionMix.of(IADD=1).ratio_addlop_to_shiftmad == float("inf")

    def test_shift_mad_classes(self):
        assert InstructionClass.FUNNEL in SHIFT_MAD_CLASSES
        assert InstructionClass.IADD not in SHIFT_MAD_CLASSES

    def test_as_table_row_layout(self):
        row = InstructionMix.of(IADD=1, PRMT=2).as_table_row()
        assert row["IADD"] == 1
        assert row["PRMT (byte_perm)"] == 2
        assert row["IMAD/ISCADD"] == 0

    def test_merge_mixes(self):
        merged = merge_mixes([InstructionMix.of(IADD=1), InstructionMix.of(IADD=2, LOP=1)])
        assert merged[InstructionClass.IADD] == 3
        assert merged[InstructionClass.LOP] == 1


class TestSourceMix:
    def test_bump_and_total(self):
        mix = SourceMix()
        mix.bump(SourceOp.ADD, 3)
        mix.bump_rotate(7)
        assert mix[SourceOp.ADD] == 3
        assert mix[SourceOp.ROTATE] == 1
        assert mix.total == 4
        assert mix.rotate_amounts[7] == 1

    def test_table3_row_expands_rotates(self):
        mix = SourceMix()
        mix.bump(SourceOp.ADD, 4)
        mix.bump(SourceOp.SHIFT, 1)
        mix.bump_rotate(5)
        row = mix.as_table3_row()
        assert row["32-bit integer ADD"] == 5  # 4 + 1 rotate-internal add
        assert row["32-bit integer shift"] == 3  # 1 + 2 rotate-internal shifts

    def test_copy_is_independent(self):
        mix = SourceMix()
        mix.bump(SourceOp.ADD)
        clone = mix.copy()
        clone.bump(SourceOp.ADD)
        assert mix[SourceOp.ADD] == 1
        assert clone[SourceOp.ADD] == 2
