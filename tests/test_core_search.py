"""Tests for the formal exhaustive-search pattern (Section III-A)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.search import ExhaustiveSearch, SearchProblem, keyspace_problem
from repro.keyspace import Charset, Interval, KeyMapping

ABC = Charset("abc", name="abc")


def squares_problem(size=100):
    """Toy problem: find perfect squares by enumeration."""
    return SearchProblem(
        f=lambda i: i,
        test=lambda x: int(x**0.5) ** 2 == x,
        size=size,
        next_op=lambda i, x: x + 1,
    )


class TestSearchProblem:
    def test_candidate_bounds(self):
        p = squares_problem(10)
        assert p.candidate(3) == 3
        with pytest.raises(IndexError):
            p.candidate(10)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SearchProblem(f=int, test=bool, size=-1)


class TestExhaustiveSearch:
    def test_finds_all_solutions(self):
        outcome = ExhaustiveSearch(squares_problem(26)).run()
        assert [i for i, _ in outcome.accepted] == [0, 1, 4, 9, 16, 25]
        assert outcome.tested == 26

    def test_interval_restriction(self):
        outcome = ExhaustiveSearch(squares_problem(100)).run(Interval(10, 20))
        assert [i for i, _ in outcome.accepted] == [16]
        assert outcome.tested == 10

    def test_stop_after(self):
        outcome = ExhaustiveSearch(squares_problem(100)).run(stop_after=3)
        assert len(outcome.accepted) == 3
        assert outcome.tested == 5  # stops right at candidate 4

    def test_next_operator_amortizes_f(self):
        # One f call, the rest via next — the pattern's efficiency claim.
        outcome = ExhaustiveSearch(squares_problem(50)).run()
        assert outcome.f_calls == 1
        assert outcome.next_calls == 49
        assert outcome.conversion_fraction == pytest.approx(1 / 50)

    def test_without_next_every_candidate_pays_f(self):
        problem = SearchProblem(f=lambda i: i, test=lambda x: x == 7, size=20)
        outcome = ExhaustiveSearch(problem).run()
        assert outcome.f_calls == 20
        assert outcome.next_calls == 0

    def test_empty_interval(self):
        outcome = ExhaustiveSearch(squares_problem(10)).run(Interval(5, 5))
        assert outcome.tested == 0
        assert outcome.conversion_fraction == 0.0

    def test_out_of_space_interval(self):
        with pytest.raises(IndexError):
            ExhaustiveSearch(squares_problem(10)).run(Interval(0, 11))

    def test_merge_filters_tentative_accepts(self):
        # Minimization: every local improvement is a tentative accept; the
        # merge keeps only the global minimum (the paper's example).
        problem = SearchProblem(
            f=lambda i: (i * 7) % 13,
            test=lambda x: True,
            size=13,
            merge=lambda xs: [min(xs)] if xs else [],
        )
        outcome = ExhaustiveSearch(problem).run()
        assert [s for _, s in outcome.accepted] == [0]

    def test_run_partitioned_equals_run_whole(self):
        search = ExhaustiveSearch(squares_problem(100))
        whole = search.run()
        parts = search.run_partitioned(
            [Interval(0, 30), Interval(30, 77), Interval(77, 100)]
        )
        assert parts.accepted == whole.accepted
        assert parts.tested == whole.tested
        # Partitioning costs one extra f conversion per part.
        assert parts.f_calls == 3

    def test_run_partitioned_with_merge(self):
        problem = SearchProblem(
            f=lambda i: 100 - i,
            test=lambda x: x % 10 == 0,
            size=100,
            merge=lambda xs: [min(xs)] if xs else [],
        )
        outcome = ExhaustiveSearch(problem).run_partitioned(
            [Interval(0, 50), Interval(50, 100)]
        )
        assert [s for _, s in outcome.accepted] == [10]


class TestKeyspaceProblem:
    def test_binds_f_and_next_to_mapping(self):
        mapping = KeyMapping(ABC, 1, 3)
        problem = keyspace_problem(mapping, lambda key: key == "bc")
        outcome = ExhaustiveSearch(problem).run()
        assert outcome.accepted == [(mapping.index_of("bc"), "bc")]
        assert outcome.f_calls == 1
        assert outcome.next_calls == mapping.size - 1

    @settings(max_examples=10, deadline=None)
    @given(start=st.integers(0, 30), span=st.integers(0, 30))
    def test_property_interval_scan_matches_bruteforce(self, start, span):
        mapping = KeyMapping(ABC, 0, 4)
        stop = min(start + span, mapping.size)
        problem = keyspace_problem(mapping, lambda key: key.startswith("ab"))
        outcome = ExhaustiveSearch(problem).run(Interval(start, stop))
        expected = [
            (i, mapping.key_at(i))
            for i in range(start, stop)
            if mapping.key_at(i).startswith("ab")
        ]
        assert outcome.accepted == expected
