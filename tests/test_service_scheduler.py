"""Tests for fair-share scheduling and the serve loop.

The acceptance bar: two concurrent jobs with priorities 1 and 4 receive
backend time within 15% of 1:4, every control action (pause/resume/
cancel/drain) parks at a chunk boundary with a durable checkpoint, and
per-job metrics land in the store.
"""

import hashlib
import json

import pytest

from repro.obs import Recorder, validate_metrics
from repro.service import JobSpec, JobStore, Scheduler, serve

LOWER = "abcdefghijklmnopqrstuvwxyz"


def findable(password=b"dog", **kw):
    defaults = dict(
        digest=hashlib.md5(password).digest(),
        charset=LOWER,
        min_length=1,
        max_length=3,
        chunk_size=500,
    )
    defaults.update(kw)
    return JobSpec(**defaults)


def endless(**kw):
    """A job whose space is far too large to finish during a test."""
    defaults = dict(max_length=5, digest=hashlib.md5(b"*no such key*").digest())
    defaults.update(kw)
    return findable(**defaults)


class TestFairShare:
    def test_priorities_1_and_4_share_1_to_4(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=1000)
        low = sched.submit(endless(), priority=1).id
        high = sched.submit(endless(), priority=4).id
        sched.run_until_idle(max_rounds=4)
        served_low, served_high = sched.served(low), sched.served(high)
        assert served_low > 0 and served_high > 0
        ratio = served_high / served_low
        assert abs(ratio - 4.0) <= 4.0 * 0.15  # the 15% acceptance window
        # ...and the persisted checkpoints agree with the in-memory account.
        assert store.load_progress(low).done_count == served_low
        assert store.load_progress(high).done_count == served_high

    def test_equal_priorities_share_equally(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=800)
        a = sched.submit(endless()).id
        b = sched.submit(endless()).id
        sched.run_until_idle(max_rounds=3)
        assert sched.served(a) == sched.served(b) > 0


class TestLifecycle:
    def test_job_runs_to_done_and_reports_found(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=5000)
        job = sched.submit(findable(b"dog")).id
        sched.run_until_idle()
        record = store.load(job)
        assert record.state == "done"
        assert "1 found" in record.message
        found = store.load_progress(job).found
        assert [key for _, key in found] == ["dog"]

    def test_exhausted_space_with_no_match_is_done(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=50_000)
        job = sched.submit(findable(b"not in space", max_length=2)).id
        sched.run_until_idle()
        record = store.load(job)
        assert record.state == "done" and "0 found" in record.message
        assert store.load_progress(job).is_complete

    def test_done_jobs_are_not_rescheduled(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=5000)
        sched.submit(findable(b"dog"))
        sched.run_until_idle()
        assert sched.runnable_jobs() == []
        assert sched.step() == []

    def test_pause_while_queued_then_resume(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=2000)
        job = sched.submit(findable(b"dog")).id
        sched.pause(job)
        assert store.load(job).state == "paused"
        sched.step()
        assert sched.served(job) == 0  # paused jobs get no backend time
        sched.resume(job)
        sched.run_until_idle()
        assert store.load(job).state == "done"

    def test_pause_running_job_parks_at_next_slice(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=1000)
        job = sched.submit(endless()).id
        sched.step()
        assert store.load(job).state == "running"
        served_before = sched.served(job)
        sched.pause(job)
        sched.step()  # control flag applies before any new dispatch
        assert store.load(job).state == "paused"
        assert sched.served(job) == served_before
        # the checkpoint reflects everything served so far — resumable
        assert store.load_progress(job).done_count == served_before

    def test_cancel_and_resurrect(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=1000)
        job = sched.submit(endless()).id
        sched.cancel(job)
        assert store.load(job).state == "cancelled"
        assert sched.runnable_jobs() == []
        sched.resume(job)
        assert store.load(job).state == "queued"

    def test_drain_parks_resumably_and_fresh_scheduler_finishes(self, tmp_path):
        store = JobStore(tmp_path)
        first = Scheduler(store, quantum=2000)
        job = first.submit(findable(b"zoo")).id
        first.step()
        covered = store.load_progress(job).done_count
        assert 0 < covered < findable().space_size
        first.drain()
        first.run_until_idle()
        assert store.load(job).state == "queued"  # parked, not lost
        second = Scheduler(store, quantum=20_000)
        second.run_until_idle()
        assert store.load(job).state == "done"
        assert [k for _, k in store.load_progress(job).found] == ["zoo"]


class TestFaultIsolation:
    def test_corrupt_checkpoint_fails_the_job_not_the_daemon(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=50_000)
        bad = sched.submit(endless()).id
        good = sched.submit(findable(b"cat")).id
        (store.job_dir(bad) / "checkpoint.json").write_text("{{{ not json")
        sched.run_until_idle()
        assert store.load(bad).state == "failed"
        assert "corrupt checkpoint" in store.load(bad).message
        assert store.load(good).state == "done"

    def test_backend_exception_fails_the_job_with_reason(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=1000)
        job = sched.submit(endless()).id

        def explode(*a, **kw):
            raise RuntimeError("boom")

        sched.backend.run = explode
        sched.step()
        record = store.load(job)
        assert record.state == "failed"
        assert "RuntimeError: boom" in record.message
        assert store.load_progress(job).check_invariant()  # checkpoint intact


class TestObservability:
    def test_per_job_metrics_persisted_and_schema_valid(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=5000)
        job = sched.submit(findable(b"dog")).id
        sched.run_until_idle()
        payload = store.load_metrics(job)
        assert payload is not None
        assert validate_metrics(payload) == []
        counters = {c["name"] for c in payload["counters"]}
        assert "service.checkpoints" in counters

    def test_scheduler_recorder_carries_the_decision_timeline(self, tmp_path):
        store = JobStore(tmp_path)
        recorder = Recorder()
        sched = Scheduler(store, quantum=1000, recorder=recorder)
        sched.submit(endless(), priority=2)
        sched.run_until_idle(max_rounds=2)
        payload = recorder.export()
        assert validate_metrics(payload) == []
        events = {e["name"] for e in payload["events"]}
        assert "sched.decision" in events
        assert "job.checkpoint" in events
        counters = {c["name"] for c in payload["counters"]}
        assert "service.slices" in counters


class TestServe:
    def test_once_runs_everything_to_done(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(findable(b"dog"))
        store.submit(findable(b"cat"), priority=3)
        summary = serve(store, quantum=20_000, once=True, install_signal_handlers=False)
        assert summary.states == {"done": 2}
        assert not summary.drained
        assert all(count > 0 for count in summary.served.values())

    def test_max_rounds_bounds_the_loop(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(endless())
        summary = serve(
            store, quantum=1000, max_rounds=2, install_signal_handlers=False
        )
        assert summary.rounds == 2
        assert store.load_progress(store.jobs()[0].id).done_count > 0

    def test_pre_drained_scheduler_parks_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(endless()).id
        store.set_state(job, "running")  # as if a slice were interrupted
        sched = Scheduler(store, quantum=1000)
        sched.drain()
        summary = serve(store, scheduler=sched, install_signal_handlers=False)
        assert summary.drained
        assert store.load(job).state == "queued"

    def test_serve_recorder_export_lands_in_summary(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(findable(b"dog"))
        recorder = Recorder()
        summary = serve(
            store, quantum=20_000, once=True, recorder=recorder,
            install_signal_handlers=False,
        )
        assert summary.metrics is not None
        assert validate_metrics(summary.metrics) == []


class TestValidation:
    def test_bad_knobs_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(ValueError):
            Scheduler(store, quantum=0)
        with pytest.raises(ValueError):
            Scheduler(store, checkpoint_every=0)

    def test_checkpoint_document_is_schema_tagged(self, tmp_path):
        store = JobStore(tmp_path)
        sched = Scheduler(store, quantum=1000)
        job = sched.submit(endless()).id
        sched.step()
        document = json.loads((store.job_dir(job) / "checkpoint.json").read_text())
        assert document["schema"] == "repro-job/v1"
        assert document["kind"] == "checkpoint"
        assert document["job"] == job


class TestControlThreadSafety:
    def test_apply_control_survives_concurrent_resume(self, tmp_path):
        """resume() withdrawing a pause between check and take is a no-op.

        pause/cancel arrive from other threads (the serve daemon's
        control surface) while the scheduler applies them at chunk
        boundaries.  Before _control grew its lock, _apply_control did
        an unconditional ``pop(job_id)`` and a resume() landing in the
        window between the pending-check and the pop crashed the whole
        serve loop with KeyError.
        """
        store = JobStore(tmp_path)
        with Scheduler(store, quantum=1000) as sched:
            job = sched.submit(endless()).id
            sched._request_control(job, "pause")
            assert sched._pending_control(job)
            sched.resume(job)  # withdraws the request, as another thread would
            state = sched._apply_control(job)  # must not raise
            assert state == "queued"  # safe no-op: the store state stands
            assert not sched._pending_control(job)

    def test_control_requests_are_applied_once(self, tmp_path):
        store = JobStore(tmp_path)
        with Scheduler(store, quantum=1000) as sched:
            job = sched.submit(endless()).id
            sched.step()  # the job starts running
            sched._request_control(job, "pause")
            assert sched._take_control(job) == "pause"
            assert sched._take_control(job) is None  # second taker gets nothing
