"""End-to-end tests: the cracking engine must really crack hashes."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cracking import CrackEngine, CrackTarget, crack_interval
from repro.keyspace import ALPHA_LOWER, Charset, DIGITS, Interval
from repro.kernels.variants import HashAlgorithm

ABC = Charset("abc", name="abc")


class TestCrackTarget:
    def test_from_password_roundtrip(self):
        target = CrackTarget.from_password("dog", ALPHA_LOWER)
        assert target.digest == hashlib.md5(b"dog").digest()
        assert target.verify("dog")
        assert not target.verify("cat")

    def test_digest_length_validated(self):
        with pytest.raises(ValueError, match="16 bytes"):
            CrackTarget(HashAlgorithm.MD5, b"short", ALPHA_LOWER)
        with pytest.raises(ValueError, match="20 bytes"):
            CrackTarget(HashAlgorithm.SHA1, b"x" * 16, ALPHA_LOWER)

    def test_window_validated(self):
        digest = hashlib.md5(b"x").digest()
        with pytest.raises(ValueError, match="invalid length window"):
            CrackTarget(HashAlgorithm.MD5, digest, ALPHA_LOWER, 5, 3)
        with pytest.raises(ValueError, match="20 characters"):
            CrackTarget(HashAlgorithm.MD5, digest, ALPHA_LOWER, 1, 25)

    def test_single_block_capacity_validated(self):
        digest = hashlib.md5(b"x").digest()
        with pytest.raises(ValueError, match="single-block"):
            CrackTarget(HashAlgorithm.MD5, digest, ALPHA_LOWER, 1, 20, prefix=b"s" * 40)

    def test_password_outside_charset_rejected(self):
        with pytest.raises(ValueError, match="outside the charset"):
            CrackTarget.from_password("DOG", ALPHA_LOWER)

    def test_space_size(self):
        target = CrackTarget.from_password("ab", ABC, min_length=1, max_length=3)
        assert target.space_size == 3 + 9 + 27

    def test_optimized_kernel_gate(self):
        digest = hashlib.md5(b"x").digest()
        assert CrackTarget(HashAlgorithm.MD5, digest, ABC).uses_optimized_kernel
        salted = CrackTarget(HashAlgorithm.MD5, digest, ABC, prefix=b"s")
        assert not salted.uses_optimized_kernel


class TestCrackMD5:
    @pytest.mark.parametrize("password", ["a", "cc", "cab", "abca", "cabba"])
    def test_finds_planted_password_md5(self, password):
        target = CrackTarget.from_password(password, ABC, min_length=1, max_length=5)
        engine = CrackEngine(target, batch_size=257)  # odd size exercises run splits
        matches = engine.search_all()
        assert (target.mapping.index_of(password), password) in matches
        assert all(target.verify(key) for _, key in matches)

    def test_interval_restricts_search(self):
        target = CrackTarget.from_password("cab", ABC, min_length=3, max_length=3)
        index = target.mapping.index_of("cab")
        before = crack_interval(target, Interval(0, index))
        assert before == []
        hit = crack_interval(target, Interval(index, index + 1))
        assert hit == [(index, "cab")]

    def test_suffix_salted_crack(self):
        target = CrackTarget.from_password(
            "dog", ALPHA_LOWER, suffix=b"::pepper", min_length=3, max_length=3
        )
        assert target.uses_optimized_kernel  # suffix salting keeps word 0 free
        index = target.mapping.index_of("dog")
        found = crack_interval(target, Interval(max(0, index - 50), index + 50))
        assert (index, "dog") in found

    def test_prefix_salted_crack_uses_generic_path(self):
        target = CrackTarget.from_password(
            "dog", ALPHA_LOWER, prefix=b"NaCl$", min_length=3, max_length=3
        )
        assert not target.uses_optimized_kernel
        index = target.mapping.index_of("dog")
        found = crack_interval(target, Interval(max(0, index - 50), index + 50))
        assert (index, "dog") in found

    def test_fast_and_naive_paths_agree(self):
        target = CrackTarget.from_password("bba", ABC, min_length=1, max_length=4)
        fast = CrackEngine(target, batch_size=64).search_all()
        naive = CrackEngine(target, batch_size=64, force_naive=True).search_all()
        assert fast == naive

    def test_no_match_returns_empty(self):
        # digest of a key outside the window
        target = CrackTarget.from_password("aaaaaa", ABC, min_length=1, max_length=2)
        assert CrackEngine(target).search_all() == []

    def test_interval_out_of_range(self):
        target = CrackTarget.from_password("a", ABC, min_length=1, max_length=2)
        with pytest.raises(IndexError):
            crack_interval(target, Interval(0, target.space_size + 1))

    def test_stats_accumulate(self):
        target = CrackTarget.from_password("ab", ABC, min_length=1, max_length=3)
        engine = CrackEngine(target, batch_size=10)
        engine.search_all()
        assert engine.stats.tested == target.space_size
        assert engine.stats.batches == -(-target.space_size // 10)
        assert engine.stats.runs >= 3  # at least one template per length
        assert engine.stats.elapsed > 0
        assert engine.stats.mkeys_per_second > 0

    def test_batch_size_validated(self):
        target = CrackTarget.from_password("a", ABC)
        with pytest.raises(ValueError):
            CrackEngine(target, batch_size=0)


class TestCrackSHA1:
    @pytest.mark.parametrize("password", ["b", "ca", "abc", "bbbb"])
    def test_finds_planted_password_sha1(self, password):
        target = CrackTarget.from_password(
            password, ABC, algorithm=HashAlgorithm.SHA1, min_length=1, max_length=4
        )
        matches = CrackEngine(target, batch_size=100).search_all()
        assert (target.mapping.index_of(password), password) in matches

    def test_sha1_salted(self):
        target = CrackTarget.from_password(
            "42", DIGITS, algorithm=HashAlgorithm.SHA1, suffix=b"!", min_length=2, max_length=2
        )
        found = CrackEngine(target).search_all()
        assert found == [(target.mapping.index_of("42"), "42")]

    def test_sha1_fast_and_naive_agree(self):
        target = CrackTarget.from_password(
            "cb", ABC, algorithm=HashAlgorithm.SHA1, min_length=1, max_length=3
        )
        fast = CrackEngine(target, batch_size=7).search_all()
        naive = CrackEngine(target, batch_size=7, force_naive=True).search_all()
        assert fast == naive


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_property_any_planted_key_is_found(data):
    length = data.draw(st.integers(1, 4))
    password = "".join(data.draw(st.sampled_from("abc")) for _ in range(length))
    algorithm = data.draw(st.sampled_from(list(HashAlgorithm)))
    target = CrackTarget.from_password(
        password, ABC, algorithm=algorithm, min_length=1, max_length=4
    )
    batch = data.draw(st.integers(1, 300))
    matches = CrackEngine(target, batch_size=batch).search_all()
    keys = [k for _, k in matches]
    assert password in keys
    assert all(target.verify(k) for k in keys)
