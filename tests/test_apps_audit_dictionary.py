"""Tests for auditing sessions and dictionary/hybrid attacks."""

import hashlib

import pytest

from repro.apps.audit import AuditEntry, AuditSession
from repro.apps.cracking import CrackTarget
from repro.apps.dictionary import (
    DictionaryAttack,
    HybridAttack,
    MANGLE_RULES,
    mangle_word,
)
from repro.keyspace import ALPHA_LOWER, Charset, Interval
from repro.kernels.variants import HashAlgorithm

ABC = Charset("abc", name="abc")


def md5_of(text: str, prefix: bytes = b"", suffix: bytes = b"") -> bytes:
    return hashlib.md5(prefix + text.encode() + suffix).digest()


class TestAuditSession:
    def entries(self):
        return [
            AuditEntry("alice", md5_of("ab")),  # weak: cracked
            AuditEntry("bob", md5_of("cab", suffix=b"$1"), suffix=b"$1"),  # salted, weak
            AuditEntry("carol", md5_of("longpassword")),  # outside the window
        ]

    def test_full_audit(self):
        session = AuditSession(self.entries(), ABC, max_length=3)
        report = session.run()
        assert report.accounts_total == 3
        assert report.cracked == 2
        assert report.password_of("alice") == "ab"
        assert report.password_of("bob") == "cab"
        assert report.password_of("carol") is None
        assert report.survival_rate == pytest.approx(1 / 3)
        assert report.candidates_tested > 0

    def test_budget_limits_testing(self):
        session = AuditSession(self.entries(), ABC, max_length=3)
        report = session.run(budget=3)  # only the 3 single-char candidates
        assert report.cracked == 0
        assert report.candidates_tested == 9  # 3 per account

    def test_duplicate_accounts_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AuditSession([AuditEntry("a", md5_of("x")), AuditEntry("a", md5_of("y"))], ABC)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            AuditSession([], ABC)

    def test_per_account_salt_respected(self):
        # Same password, different salts: both crack, digests differ.
        entries = [
            AuditEntry("u1", md5_of("ab", prefix=b"s1:"), prefix=b"s1:"),
            AuditEntry("u2", md5_of("ab", prefix=b"s2:"), prefix=b"s2:"),
        ]
        assert entries[0].digest != entries[1].digest
        report = AuditSession(entries, ABC, max_length=2).run()
        assert report.cracked == 2


class TestMangleRules:
    def test_each_rule(self):
        assert mangle_word("pass", "identity") == "pass"
        assert mangle_word("pass", "capitalize") == "Pass"
        assert mangle_word("pass", "upper") == "PASS"
        assert mangle_word("pass", "reverse") == "ssap"
        assert mangle_word("paste", "leet") == "p4573"
        assert mangle_word("pass", "append_digit", 7) == "pass7"
        assert mangle_word("pass", "prepend_digit", 7) == "7pass"

    def test_unknown_rule(self):
        with pytest.raises(ValueError, match="unknown mangling rule"):
            mangle_word("x", "zalgo")


class TestDictionaryAttack:
    def test_search_finds_word(self):
        attack = DictionaryAttack(("password", "dragon", "letmein"))
        target = CrackTarget(HashAlgorithm.MD5, md5_of("dragon"), ALPHA_LOWER)
        assert attack.search(target) == [(1, "dragon")]

    def test_bijection_bounds(self):
        attack = DictionaryAttack(("a", "b"))
        assert attack.candidate(1) == "b"
        with pytest.raises(IndexError):
            attack.candidate(2)

    def test_interval_restriction(self):
        attack = DictionaryAttack(("x", "y", "z"))
        target = CrackTarget(HashAlgorithm.MD5, md5_of("z"), ALPHA_LOWER)
        assert attack.search(target, Interval(0, 2)) == []
        assert attack.search(target, Interval(2, 3)) == [(2, "z")]

    def test_empty_dictionary_rejected(self):
        with pytest.raises(ValueError):
            DictionaryAttack(())


class TestHybridAttack:
    def test_size_is_product(self):
        attack = HybridAttack(("a", "b"), rules=("identity", "upper"), digits=(0, 1))
        assert attack.size == 8

    def test_candidate_unpacks_mixed_radix(self):
        attack = HybridAttack(("w",), rules=("append_digit",), digits=(3, 7))
        assert attack.candidate(0) == "w3"
        assert attack.candidate(1) == "w7"

    def test_bijection_covers_all_mangles(self):
        attack = HybridAttack(("pass",), digits=(9,))
        produced = {attack.candidate(i) for i in range(attack.size)}
        assert "pass" in produced
        assert "PASS" in produced
        assert "9pass" in produced and "pass9" in produced
        assert len(MANGLE_RULES) >= 7

    def test_search_finds_mangled_password(self):
        # The stored password is a mangled dictionary word: "Dragon7".
        digest = md5_of("Dragon7")
        target = CrackTarget(HashAlgorithm.MD5, digest, ALPHA_LOWER)
        attack = HybridAttack(("dragon", "letmein"))
        hits = attack.search(target)
        assert [w for _, w in hits] == []  # capitalize+append is 2 rules deep
        # A single-rule mangle is found:
        target2 = CrackTarget(HashAlgorithm.MD5, md5_of("dragon7"), ALPHA_LOWER)
        hits2 = attack.search(target2)
        assert "dragon7" in [w for _, w in hits2]

    def test_out_of_bounds(self):
        attack = HybridAttack(("w",))
        with pytest.raises(IndexError):
            attack.candidate(attack.size)

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridAttack((), rules=("identity",))
