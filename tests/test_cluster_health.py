"""Liveness policy unit tests, all driven by a fake clock."""

import random

import pytest

from repro.cluster.health import (
    ALIVE,
    DEAD,
    PROBING,
    QUARANTINED,
    BackoffPolicy,
    HealthConfig,
    HealthMonitor,
)


def monitor(**overrides) -> HealthMonitor:
    config = HealthConfig(
        heartbeat_interval=1.0,
        heartbeat_grace=3.0,
        quarantine_failures=3,
        quarantine_window=100.0,
        quarantine_period=10.0,
        **overrides,
    )
    return HealthMonitor(config, clock=lambda: 0.0)


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        for kwargs in (
            {"heartbeat_interval": 0},
            {"heartbeat_grace": 0.5},
            {"deadline_slack": 0.5},
            {"min_deadline": 0},
            {"quarantine_failures": 0},
            {"quarantine_window": 0},
            {"probe_chunk": 0},
            {"speculation_slack": 0.5},
            {"cancel_grace": -1},
        ):
            with pytest.raises(ValueError):
                HealthConfig(**kwargs)

    def test_heartbeat_timeout(self):
        assert HealthConfig(
            heartbeat_interval=0.5, heartbeat_grace=4
        ).heartbeat_timeout == pytest.approx(2.0)


class TestHeartbeatLiveness:
    def test_register_then_silence_then_rejoin(self):
        m = monitor()
        assert m.heartbeat("w", now=0.0) == "registered"
        assert m.state("w") == ALIVE
        assert m.missed_heartbeats(now=2.0) == []  # within grace
        assert m.missed_heartbeats(now=3.5) == ["w"]
        assert m.record_failure("w", now=3.5) == DEAD
        assert not m.dispatchable("w")
        assert m.heartbeat("w", now=5.0) == "rejoined"
        assert m.dispatchable("w")
        assert m.get("w").rejoins == 1

    def test_unknown_worker_is_dead(self):
        m = monitor()
        assert m.state("nobody") == DEAD
        assert not m.dispatchable("nobody")

    def test_repeat_heartbeat_is_no_transition(self):
        m = monitor()
        m.heartbeat("w", now=0.0)
        assert m.heartbeat("w", now=1.0) == ""


class TestQuarantine:
    def test_circuit_opens_after_window_failures(self):
        m = monitor()
        m.heartbeat("flappy", now=0.0)
        assert m.record_failure("flappy", now=1.0) == DEAD
        m.heartbeat("flappy", now=2.0)
        assert m.record_failure("flappy", now=3.0) == DEAD
        m.heartbeat("flappy", now=4.0)
        assert m.record_failure("flappy", now=5.0) == QUARANTINED
        assert m.state("flappy") == QUARANTINED
        assert not m.dispatchable("flappy")
        # A heartbeat does not readmit a quarantined worker.
        assert m.heartbeat("flappy", now=6.0) == ""
        assert m.state("flappy") == QUARANTINED

    def test_rejoin_with_open_circuit_stays_benched(self):
        m = monitor()
        for t in (0.0, 1.0, 2.0):
            m.record_failure("w", now=t)
        assert m.state("w") == QUARANTINED
        # Suppose it then also went silent and was marked dead; a fresh
        # beacon readmits it only as far as the bench.
        m.get("w").state = DEAD
        assert m.heartbeat("w", now=3.0) == "quarantined"
        assert m.state("w") == QUARANTINED

    def test_old_failures_age_out_of_the_window(self):
        m = monitor()
        m.heartbeat("w", now=0.0)
        m.record_failure("w", now=0.0)
        m.record_failure("w", now=1.0)
        # Third failure lands after the first two left the 100s window.
        assert m.record_failure("w", now=150.0) == DEAD

    def test_probe_lifecycle(self):
        m = monitor()
        m.heartbeat("w", now=0.0)
        for t in (1.0, 2.0, 3.0):
            m.record_failure("w", now=t)
        assert m.state("w") == QUARANTINED
        # Not due before the period; never due while silent.
        assert m.due_probes(now=5.0) == []
        assert m.due_probes(now=50.0) == []  # silent since t=0
        m.heartbeat("w", now=49.5)
        assert m.due_probes(now=50.0) == ["w"]
        m.probe_started("w")
        assert m.state("w") == PROBING
        assert not m.dispatchable("w")  # holds exactly the probe chunk
        m.probe_succeeded("w", now=51.0)
        assert m.state("w") == ALIVE
        assert m.get("w").failures == []  # circuit closed clean

    def test_recoverable(self):
        m = monitor()
        m.heartbeat("w", now=0.0)
        assert m.recoverable("w", now=0.0)
        for t in (1.0, 2.0, 3.0):
            m.record_failure("w", now=t)
        # Quarantined but heartbeating: can come back via a probe.
        m.heartbeat("w", now=4.0)
        assert m.recoverable("w", now=5.0)
        # Quarantined *and* silent: gone for good.
        assert not m.recoverable("w", now=20.0)
        assert not m.recoverable("stranger", now=0.0)

    def test_dead_with_fresh_beacon_is_recoverable(self):
        # Marked dead a moment before its proof-of-life was polled: the
        # next heartbeat rejoins it, so the run is not lost yet.
        m = monitor()
        m.heartbeat("w", now=0.0)
        m.record_failure("w", now=1.0)
        assert m.state("w") == DEAD
        assert m.recoverable("w", now=2.0)
        assert not m.recoverable("w", now=10.0)


class TestDeadlines:
    def test_scales_with_measured_rate(self):
        m = monitor(deadline_slack=4.0, min_deadline=0.5)
        # 1000 ids at 100/s -> 10s expected -> 40s deadline.
        assert m.deadline_for(1000, 100.0, now=5.0) == pytest.approx(45.0)

    def test_unmeasured_rate_uses_fallback(self):
        m = monitor()
        assert m.deadline_for(10**9, None, now=0.0, fallback=7.5) == 7.5
        assert m.deadline_for(10**9, 0.0, now=0.0, fallback=7.5) == 7.5

    def test_min_deadline_floor(self):
        m = monitor(deadline_slack=4.0, min_deadline=0.5)
        # Tiny chunk on a fast worker still gets the floor.
        assert m.deadline_for(10, 1e9, now=0.0) == pytest.approx(0.5)


class TestBackoffPolicy:
    def test_exponential_growth_capped(self):
        policy = BackoffPolicy(base=0.5, cap=4.0, multiplier=2.0, jitter=0.0)
        assert [policy.delay(a) for a in range(5)] == [0.5, 1.0, 2.0, 4.0, 4.0]

    def test_jitter_stays_within_band(self):
        policy = BackoffPolicy(base=1.0, cap=60.0, multiplier=2.0, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(8):
            raw = min(60.0, 1.0 * 2.0**attempt)
            for _ in range(50):
                d = policy.delay(attempt, rng)
                assert raw * 0.5 <= d <= raw * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0)
        with pytest.raises(ValueError):
            BackoffPolicy(base=2.0, cap=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=2.0)


class TestThreadSafety:
    def test_register_during_sweep_is_safe(self):
        """register() racing missed_heartbeats() must not blow up.

        Heartbeats land on the transport's receive thread while the
        gather loop sweeps for silence; before the monitor grew its
        lock this crashed with "dictionary changed size during
        iteration" under load.
        """
        import threading

        m = HealthMonitor(HealthConfig(), clock=lambda: 0.0)
        stop = threading.Event()
        errors = []

        def churn():
            i = 0
            while not stop.is_set():
                # Unbounded names: the dict keeps growing (and resizing)
                # for the whole test, which is what races the sweeps.
                m.register(f"w{i}", now=0.0)
                m.record_failure(f"x{i}", now=0.0)
                i += 1

        def sweep():
            while not stop.is_set():
                m.missed_heartbeats(now=100.0)
                m.due_probes(now=100.0)
                m.known()

        threads = [threading.Thread(target=with_errors(fn, errors)) for fn in (churn, sweep, sweep)]
        for t in threads:
            t.start()
        import time as _time

        _time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=5)
        assert errors == [], errors

    def test_reentrant_transitions_under_lock(self):
        # record_failure/heartbeat/probe_* call register() while already
        # holding the monitor lock: an ordinary Lock would deadlock here.
        m = monitor()
        assert m.record_failure("w", now=0.0) == DEAD
        assert m.heartbeat("w", now=1.0) == "rejoined"
        m.probe_started("w")
        m.probe_succeeded("w", now=2.0)
        assert m.state("w") == ALIVE


def with_errors(fn, errors):
    def run():
        try:
            fn()
        except BaseException as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    return run
