"""Property test: fault schedules never change the answer.

Drives the gather loop with a scripted transport and fake clock under
hypothesis-generated schedules of worker faults — dropped chunks, duped
and late replies, permanent deaths — and checks the two invariants the
fault-tolerance layer promises (docs/FAULT_TOLERANCE.md):

* every candidate id is tested at least once (and marked exactly once);
* ``found`` is byte-for-byte the uninterrupted single-node result.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.cracking import CrackTarget, crack_interval
from repro.cluster.runtime import DistributedMaster
from repro.keyspace import Charset, Interval
from tests.test_cluster_runtime import ScriptedTransport

ABC = Charset("abc", name="abc")

#: Per-scatter faults: answer, swallow the chunk, die silently mid-run
#: (beacon stops too), answer twice, or answer twice with the copies
#: racing a re-dispatch.
ACTIONS = ("ok", "drop", "die", "dup")


@settings(max_examples=25, deadline=None)
@given(
    n_workers=st.integers(min_value=1, max_value=3),
    password=st.sampled_from(["a", "cb", "bac", "ccc"]),
    schedule=st.lists(st.sampled_from(ACTIONS), max_size=30),
)
def test_fault_schedules_preserve_exactness(n_workers, password, schedule):
    names = [f"w{i}" for i in range(n_workers)]
    transport = ScriptedTransport(names)
    target = CrackTarget.from_password(password, ABC, min_length=1, max_length=3)
    master = DistributedMaster(
        target,
        transport=transport,
        clock=transport.clock,
        chunk_size=7,
        reply_timeout=0.2,
    )
    script = iter(schedule)

    def on_scatter(worker, msg):
        # After the schedule runs dry every worker behaves, so each
        # requeued chunk is eventually answered and the run terminates.
        action = next(script, "ok")
        if action == "die" and worker != "w0":
            # w0 is immortal: the run must end in success, not collapse
            # (the all-dead path has its own dedicated tests).
            transport.silenced.add(worker)
            return
        if action == "drop":
            return
        matches = crack_interval(target, msg.interval)
        transport.push_reply(worker, msg.interval, matches=matches)
        if action == "dup":
            transport.push_reply(worker, msg.interval, matches=matches)

    transport.on_scatter = on_scatter
    result = master.run()
    assert result.progress.is_complete
    assert result.progress.check_invariant()
    # Exactly-once accounting: duplicate and late replies never inflate
    # the tested count past the keyspace.
    assert result.tested == target.space_size
    expected = crack_interval(target, Interval(0, target.space_size))
    assert result.found == expected
    assert password in result.keys


@settings(max_examples=30, deadline=None)
@given(
    masters=st.integers(min_value=2, max_value=3),
    chunk=st.integers(min_value=1, max_value=17),
    password=st.sampled_from(["a", "cb", "bac", "ccc"]),
    schedule=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.sampled_from(["take", "steal", "dup"]),
        ),
        max_size=60,
    ),
)
def test_steal_complete_duplicate_interleavings_never_double_count(
    masters, chunk, password, schedule
):
    """The elastic exactness property (docs/ELASTICITY.md): over any
    interleaving of dispatches, inter-master steals, and duplicated
    replies, the sum of novel spans returned by ``ShardBoard.claim``
    tiles the keyspace exactly — no id is ever counted twice, and every
    match surfaces exactly once."""
    from repro.cluster.elastic import ShardBoard
    from repro.cluster.runtime import PendingQueue
    from repro.keyspace.intervals import partition_evenly

    target = CrackTarget.from_password(password, ABC, min_length=1, max_length=3)
    total = target.space_size
    shards = partition_evenly(Interval(0, total), masters)
    board = ShardBoard(total, shards)
    pools = [PendingQueue([shard]) for shard in shards]
    claimed = 0
    last_piece = None

    def claim(piece):
        nonlocal claimed
        novel = board.claim(piece, matches=crack_interval(target, piece))
        claimed += sum(iv.size for iv in novel)

    for lane_raw, op in schedule:
        lane = lane_raw % masters
        if op == "take":
            piece = pools[lane].take(chunk)
            if piece is not None:
                claim(piece)
                last_piece = piece
        elif op == "steal":
            victim = max(
                (j for j in range(masters) if j != lane),
                key=lambda j: pools[j].total(),
            )
            pools[lane].push_front(pools[victim].steal_half())
        elif op == "dup" and last_piece is not None:
            claim(last_piece)  # a duplicated / replayed reply
    # Whatever the schedule left pending, finishing the queues must land
    # the claimed total on the keyspace size exactly.
    for pool in pools:
        while True:
            piece = pool.take(chunk)
            if piece is None:
                break
            claim(piece)
    assert claimed == total
    assert board.is_complete
    assert board.check_invariant()
    expected = crack_interval(target, Interval(0, total))
    assert board.found == expected
