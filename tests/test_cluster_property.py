"""Property test: fault schedules never change the answer.

Drives the gather loop with a scripted transport and fake clock under
hypothesis-generated schedules of worker faults — dropped chunks, duped
and late replies, permanent deaths — and checks the two invariants the
fault-tolerance layer promises (docs/FAULT_TOLERANCE.md):

* every candidate id is tested at least once (and marked exactly once);
* ``found`` is byte-for-byte the uninterrupted single-node result.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.cracking import CrackTarget, crack_interval
from repro.cluster.runtime import DistributedMaster
from repro.keyspace import Charset, Interval
from tests.test_cluster_runtime import ScriptedTransport

ABC = Charset("abc", name="abc")

#: Per-scatter faults: answer, swallow the chunk, die silently mid-run
#: (beacon stops too), answer twice, or answer twice with the copies
#: racing a re-dispatch.
ACTIONS = ("ok", "drop", "die", "dup")


@settings(max_examples=25, deadline=None)
@given(
    n_workers=st.integers(min_value=1, max_value=3),
    password=st.sampled_from(["a", "cb", "bac", "ccc"]),
    schedule=st.lists(st.sampled_from(ACTIONS), max_size=30),
)
def test_fault_schedules_preserve_exactness(n_workers, password, schedule):
    names = [f"w{i}" for i in range(n_workers)]
    transport = ScriptedTransport(names)
    target = CrackTarget.from_password(password, ABC, min_length=1, max_length=3)
    master = DistributedMaster(
        target,
        transport=transport,
        clock=transport.clock,
        chunk_size=7,
        reply_timeout=0.2,
    )
    script = iter(schedule)

    def on_scatter(worker, msg):
        # After the schedule runs dry every worker behaves, so each
        # requeued chunk is eventually answered and the run terminates.
        action = next(script, "ok")
        if action == "die" and worker != "w0":
            # w0 is immortal: the run must end in success, not collapse
            # (the all-dead path has its own dedicated tests).
            transport.silenced.add(worker)
            return
        if action == "drop":
            return
        matches = crack_interval(target, msg.interval)
        transport.push_reply(worker, msg.interval, matches=matches)
        if action == "dup":
            transport.push_reply(worker, msg.interval, matches=matches)

    transport.on_scatter = on_scatter
    result = master.run()
    assert result.progress.is_complete
    assert result.progress.check_invariant()
    # Exactly-once accounting: duplicate and late replies never inflate
    # the tested count past the keyspace.
    assert result.tested == target.space_size
    expected = crack_interval(target, Interval(0, target.space_size))
    assert result.found == expected
    assert password in result.keys
