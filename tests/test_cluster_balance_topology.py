"""Tests for the tuning/balancing rule and the paper topology."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterNode,
    GPUWorker,
    balanced_assignments,
    build_paper_network,
    minimum_dispatch_size,
    to_networkx,
    tree_devices,
    tree_nodes,
    tune_node,
)
from repro.cluster.balance import TunedWorker, expected_finish_times, imbalance, tune_device
from repro.keyspace import Interval
from repro.kernels.variants import HashAlgorithm


class TestPaperTopology:
    def test_structure(self):
        net = build_paper_network()
        assert tree_nodes(net) == ["A", "B", "C", "D"]
        assert set(tree_devices(net)) == {"540M", "660", "550Ti", "8600M", "8800"}
        # A dispatches to B and C; C dispatches to D (Section VI-A).
        assert [c.name for c in net.children] == ["B", "C"]
        assert [c.name for c in net.find("C").children] == ["D"]

    def test_aggregate_matches_sum_of_devices(self):
        net = build_paper_network(HashAlgorithm.MD5)
        per_device = sum(d.throughput for d in net.subtree_devices())
        assert net.aggregate_throughput == pytest.approx(per_device)
        # Table IX's theoretical sum is ~3824 Mkeys/s; ours lands nearby.
        assert net.aggregate_theoretical / 1e6 == pytest.approx(3824.1, rel=0.02)

    def test_networkx_export(self):
        graph = to_networkx(build_paper_network())
        assert nx.is_arborescence(graph)
        # 4 dispatch nodes + 5 device leaves.
        assert graph.number_of_nodes() == 9
        assert graph.nodes["A"]["kind"] == "node"
        assert graph.nodes["dev:660"]["kind"] == "device"
        # The deliberately unbalanced tree: B holds most of the power.
        assert (
            graph.nodes["B"]["aggregate_throughput"]
            > graph.nodes["C"]["aggregate_throughput"]
        )


class TestTuning:
    def test_tune_device_meets_target(self):
        w = GPUWorker("g", throughput=100e6)
        tuned = tune_device(w, 0.9)
        from repro.gpusim.launch import efficiency_at

        assert efficiency_at(w.launch, tuned.min_candidates) >= 0.9

    def test_tune_node_aggregates(self):
        net = build_paper_network()
        tuned = tune_node(net, 0.95)
        assert tuned.throughput == pytest.approx(net.aggregate_throughput)
        # N_node = sum of balanced N_j >= any single device's minimum.
        fastest = max(net.subtree_devices(), key=lambda d: d.throughput)
        assert tuned.min_candidates > tune_device(fastest, 0.95).min_candidates

    def test_minimum_dispatch_size_positive(self):
        assert minimum_dispatch_size(build_paper_network(), 0.9) > 0


class TestBalancing:
    def units(self):
        return [
            TunedWorker("fast", 1841e6, 1000),
            TunedWorker("mid", 654e6, 1000),
            TunedWorker("slow", 71e6, 1000),
        ]

    def test_assignments_proportional(self):
        interval = Interval(0, 10_000_000)
        assignments = balanced_assignments(interval, self.units())
        sizes = {u.name: iv.size for u, iv in assignments}
        assert sizes["fast"] > sizes["mid"] > sizes["slow"]
        ratio = sizes["fast"] / sizes["slow"]
        assert ratio == pytest.approx(1841 / 71, rel=0.01)

    def test_finish_times_equalized(self):
        assignments = balanced_assignments(Interval(0, 50_000_000), self.units())
        assert imbalance(assignments) < 0.001

    def test_finish_times_dict(self):
        assignments = balanced_assignments(Interval(0, 2566 * 1000), self.units())
        times = expected_finish_times(assignments)
        assert set(times) == {"fast", "mid", "slow"}

    def test_empty_units_rejected(self):
        with pytest.raises(ValueError):
            balanced_assignments(Interval(0, 10), [])

    @given(
        sizes=st.integers(10_000, 10**9),
        xs=st.lists(st.floats(1e3, 1e9), min_size=1, max_size=6),
    )
    @settings(max_examples=30)
    def test_property_assignments_tile_and_balance(self, sizes, xs):
        units = [TunedWorker(f"u{i}", x, 100) for i, x in enumerate(xs)]
        interval = Interval(0, sizes)
        assignments = balanced_assignments(interval, units)
        assert sum(iv.size for _, iv in assignments) == interval.size
        # Paper invariant: N_j / N_total ~= X_j / X_total.
        x_total = sum(xs)
        for unit, iv in assignments:
            expected = interval.size * unit.throughput / x_total
            assert abs(iv.size - expected) <= len(units)

    def test_imbalance_zero_for_empty(self):
        assert imbalance([]) == 0.0
