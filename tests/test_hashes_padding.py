"""Tests for message padding and batch block packing."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashes import Endian, pack_single_block, pad_message, single_block_capacity
from repro.hashes.padding import pack_scalar_block
from repro.hashes.vec_md5 import md5_batch_hex
from repro.hashes.vec_sha1 import sha1_batch_hex


class TestPadMessage:
    def test_empty_message_single_block(self):
        blocks = pad_message(b"", Endian.LITTLE)
        assert len(blocks) == 1
        assert blocks[0][0] == 0x80  # 0x80 in the lowest byte, little-endian
        assert blocks[0][14] == 0 and blocks[0][15] == 0

    def test_55_bytes_is_last_single_block_length(self):
        assert len(pad_message(b"x" * 55, Endian.LITTLE)) == 1
        assert len(pad_message(b"x" * 56, Endian.LITTLE)) == 2

    def test_length_field_little_endian(self):
        blocks = pad_message(b"ab", Endian.LITTLE)
        # 16 bits: stored in word 14 for little-endian length placement.
        assert blocks[0][14] == 16
        assert blocks[0][15] == 0

    def test_length_field_big_endian(self):
        blocks = pad_message(b"ab", Endian.BIG)
        assert blocks[0][14] == 0
        assert blocks[0][15] == 16

    @given(length=st.integers(0, 200))
    @settings(max_examples=30)
    def test_block_count(self, length):
        blocks = pad_message(b"z" * length, Endian.BIG)
        expected = (length + 8) // 64 + 1
        assert len(blocks) == expected
        for block in blocks:
            assert len(block) == 16
            assert all(0 <= w < 2**32 for w in block)


class TestPackSingleBlock:
    def test_matches_scalar_padding(self):
        chars = np.frombuffer(b"abcdefg", dtype=np.uint8).reshape(1, -1)
        packed = pack_single_block(chars, Endian.LITTLE)
        assert packed.tolist()[0] == pad_message(b"abcdefg", Endian.LITTLE)[0]

    def test_big_endian_matches_scalar_padding(self):
        chars = np.frombuffer(b"abcdefg", dtype=np.uint8).reshape(1, -1)
        packed = pack_single_block(chars, Endian.BIG)
        assert packed.tolist()[0] == pad_message(b"abcdefg", Endian.BIG)[0]

    def test_prefix_suffix_salting(self):
        # Salting: the digest is of salt+key+pepper but the search space is
        # still just the key (paper, Section I).
        chars = np.frombuffer(b"key1key2", dtype=np.uint8).reshape(2, 4)
        packed = pack_single_block(chars, Endian.LITTLE, prefix=b"SALT-", suffix=b"-END")
        for row, key in zip(packed, [b"key1", b"key2"]):
            assert row.tolist() == pad_message(b"SALT-" + key + b"-END", Endian.LITTLE)[0]

    def test_capacity_enforced(self):
        chars = np.zeros((1, 50), dtype=np.uint8) + ord("a")
        with pytest.raises(ValueError, match="single-block capacity"):
            pack_single_block(chars, Endian.LITTLE, prefix=b"p" * 6)
        # Exactly at capacity is fine.
        assert pack_single_block(chars, Endian.LITTLE, prefix=b"p" * 5).shape == (1, 16)

    def test_type_checks(self):
        with pytest.raises(ValueError):
            pack_single_block(np.zeros(4, dtype=np.uint8), Endian.LITTLE)
        with pytest.raises(TypeError):
            pack_single_block(np.zeros((1, 4), dtype=np.int64), Endian.LITTLE)

    def test_empty_batch_and_empty_keys(self):
        assert pack_single_block(np.zeros((0, 4), dtype=np.uint8), Endian.BIG).shape == (0, 16)
        packed = pack_single_block(np.zeros((3, 0), dtype=np.uint8), Endian.LITTLE)
        assert packed.shape == (3, 16)
        assert packed.tolist()[0] == pad_message(b"", Endian.LITTLE)[0]

    def test_capacity_constant(self):
        assert single_block_capacity() == 55

    @given(data=st.binary(min_size=0, max_size=55))
    @settings(max_examples=40)
    def test_scalar_block_wrapper_matches_hashlib_via_vec(self, data):
        le = pack_scalar_block(data, Endian.LITTLE)
        be = pack_scalar_block(data, Endian.BIG)
        assert md5_batch_hex(le) == [hashlib.md5(data).hexdigest()]
        assert sha1_batch_hex(be) == [hashlib.sha1(data).hexdigest()]
