"""Tests for the Markov-guided candidate ordering."""

import itertools
import math

import pytest

from repro.apps.cracking import CrackTarget
from repro.apps.markov import MarkovAttack, MarkovModel
from repro.keyspace import ALPHA_LOWER, Charset, KeyMapping

ABC = Charset("abc", name="abc")

CORPUS = ["cab", "cabbage", "abba", "baba", "cb", "ca", "cacao"]


def trained(charset=ABC, corpus=CORPUS, smoothing=0.1):
    model = MarkovModel(charset, smoothing=smoothing)
    model.train(corpus)
    return model


class TestMarkovModel:
    def test_training_skips_foreign_words(self):
        model = MarkovModel(ABC)
        used = model.train(["abc", "xyz", "", "ba"])
        assert used == 2

    def test_smoothing_required(self):
        with pytest.raises(ValueError, match="smoothing"):
            MarkovModel(ABC, smoothing=0.0)

    def test_transition_distribution_normalizes(self):
        model = trained()
        for state in ["^", "a", "b", "c"]:
            chars = list(ABC) + ["$"]
            total = sum(math.exp(model.log_prob_transition(state, c)) for c in chars)
            assert total == pytest.approx(1.0)

    def test_trained_bigrams_more_likely(self):
        model = trained()
        # 'c' -> 'a' is frequent in the corpus; 'a' -> 'a' never occurs.
        assert model.log_prob_transition("c", "a") > model.log_prob_transition("a", "a")

    def test_word_log_prob_decomposes(self):
        model = trained()
        lp = (
            model.log_prob_transition("^", "c")
            + model.log_prob_transition("c", "a")
            + model.log_prob_transition("a", "$")
        )
        assert model.log_prob("ca") == pytest.approx(lp)


class TestGuidedEnumeration:
    def test_order_is_non_increasing(self):
        model = trained()
        probs = [lp for _, lp in itertools.islice(model.iter_candidates(1, 4), 200)]
        assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))

    def test_yields_log_prob_of_word(self):
        model = trained()
        for word, lp in itertools.islice(model.iter_candidates(1, 3), 50):
            assert lp == pytest.approx(model.log_prob(word))

    def test_enumeration_is_exhaustive_and_unique(self):
        # The reordered f is still a bijection onto the window.
        model = trained()
        mapping = KeyMapping(ABC, 1, 3)
        words = [w for w, _ in model.iter_candidates(1, 3)]
        assert len(words) == mapping.size
        assert len(set(words)) == mapping.size
        assert set(words) == {mapping.key_at(i) for i in range(mapping.size)}

    def test_corpus_like_words_rank_early(self):
        model = trained()
        first = [w for w, _ in itertools.islice(model.iter_candidates(2, 4), 12)]
        # The most common corpus transitions dominate the head of the order.
        assert any(w.startswith("ca") or w.startswith("ba") for w in first[:4])

    def test_invalid_window(self):
        model = trained()
        with pytest.raises(ValueError):
            next(model.iter_candidates(3, 2))


class TestMarkovAttack:
    def test_guided_search_beats_lexicographic_rank(self):
        corpus = ["password", "passport", "passion", "pass"]
        model = MarkovModel(ALPHA_LOWER, smoothing=0.01)
        model.train(corpus)
        target = CrackTarget.from_password("passa", ALPHA_LOWER, min_length=5, max_length=5)
        attack = MarkovAttack(model, min_length=5, max_length=5)
        findings = attack.search(target, budget=4000)
        assert findings, "guided search must find the corpus-like password"
        guided_rank = findings[0].rank
        lex_rank = target.mapping.index_of("passa")
        assert guided_rank < 4000
        assert lex_rank > 100_000  # brute force would grind for a while
        assert guided_rank < lex_rank

    def test_rank_of(self):
        model = trained()
        attack = MarkovAttack(model, 1, 3)
        rank = attack.rank_of("ca")
        assert rank is not None and rank < 10
        assert attack.rank_of("ca", limit=1) is None or rank == 0

    def test_budget_zero(self):
        model = trained()
        target = CrackTarget.from_password("ab", ABC, min_length=1, max_length=3)
        assert MarkovAttack(model, 1, 3).search(target, 0) == []
        with pytest.raises(ValueError):
            MarkovAttack(model, 1, 3).search(target, -1)

    def test_finding_is_verified(self):
        model = trained()
        target = CrackTarget.from_password("cab", ABC, min_length=1, max_length=3)
        findings = MarkovAttack(model, 1, 3).search(target, budget=40)
        assert [f.password for f in findings] == ["cab"]
        assert findings[0].log_prob == pytest.approx(model.log_prob("cab"))
