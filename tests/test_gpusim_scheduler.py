"""Tests for the cycle-level warp-scheduler simulator."""

import pytest

from repro.gpusim import MultiprocessorSim, PAPER_DEVICES, simulate_kernel_cycles
from repro.gpusim.arch import ARCHITECTURES
from repro.gpusim.scheduler import instruction_stream, ports_for_arch
from repro.gpusim.throughput import cycles_per_hash_simulated
from repro.kernels import InstructionClass, InstructionMix
from repro.kernels.variants import HashAlgorithm, KernelVariant, get_kernel


class TestInstructionStream:
    def test_length_and_composition(self):
        mix = InstructionMix.of(IADD=6, LOP=3, SHIFT=1)
        stream = instruction_stream(mix)
        assert len(stream) == 10
        counts = {}
        for cls, _ in stream:
            counts[cls] = counts.get(cls, 0) + 1
        assert counts[InstructionClass.IADD] == 6
        assert counts[InstructionClass.LOP] == 3

    def test_proportional_prefixes(self):
        # Every prefix should be roughly representative.
        mix = InstructionMix.of(IADD=60, LOP=30, SHIFT=10)
        stream = instruction_stream(mix)
        half = stream[:50]
        iadds = sum(1 for cls, _ in half if cls is InstructionClass.IADD)
        assert 25 <= iadds <= 35

    def test_interleave_chains_alternate(self):
        mix = InstructionMix.of(IADD=8)
        stream = instruction_stream(mix, interleave=2)
        chains = [chain for _, chain in stream]
        assert chains == [0, 1] * 4

    def test_empty_mix(self):
        assert instruction_stream(InstructionMix({})) == []

    def test_invalid_interleave(self):
        with pytest.raises(ValueError):
            instruction_stream(InstructionMix.of(IADD=1), interleave=0)


class TestPorts:
    def test_1x_ports(self):
        ports = ports_for_arch(ARCHITECTURES["1.*"])
        assert [p.name for p in ports] == ["cores", "sfu"]
        assert ports[0].capacity == 8.0
        assert ports[1].classes == frozenset({InstructionClass.IADD})

    def test_21_has_one_full_and_two_addlop_groups(self):
        ports = ports_for_arch(ARCHITECTURES["2.1"])
        assert len(ports) == 3
        full = [p for p in ports if InstructionClass.SHIFT in p.classes]
        assert len(full) == 1

    def test_30_shift_mad_isolated(self):
        ports = ports_for_arch(ARCHITECTURES["3.0"])
        shm = [p for p in ports if InstructionClass.SHIFT in p.classes]
        assert len(shm) == 1
        assert InstructionClass.IADD not in shm[0].classes
        assert len(ports) == 6

    def test_35_funnel_capacity_doubled(self):
        ports = ports_for_arch(ARCHITECTURES["3.5"])
        shm = [p for p in ports if InstructionClass.FUNNEL in p.classes][0]
        assert shm.capacity == 64.0

    def test_port_issue_occupancy(self):
        ports = ports_for_arch(ARCHITECTURES["2.1"])
        p = ports[0]
        assert p.can_issue(InstructionClass.SHIFT, 0.0)
        p.issue(0.0)
        assert not p.can_issue(InstructionClass.SHIFT, 1.0)
        assert p.can_issue(InstructionClass.SHIFT, 2.0)  # 32/16 = 2 cycles


class TestSimulatorAgainstClosedForm:
    """The cycle simulator must land near the analytic port model."""

    @pytest.mark.parametrize("device_name", ["8600M", "8800", "540M", "550Ti", "660"])
    def test_md5_single_issue_agreement(self, device_name):
        dev = PAPER_DEVICES[device_name]
        mix = get_kernel(HashAlgorithm.MD5, KernelVariant.BYTE_PERM).mix_for(dev.family)
        sim = simulate_kernel_cycles(dev, mix, interleave=1)
        closed_cycles = cycles_per_hash_simulated(dev.arch, mix, ilp_fraction=0.0)
        # The event-level sim may be conservative (port convoying) but never
        # optimistic beyond rounding.
        assert sim.cycles_per_hash == pytest.approx(closed_cycles, rel=0.25)
        assert sim.cycles_per_hash > closed_cycles * 0.95

    def test_interleave_speeds_up_dual_issue_archs(self):
        dev = PAPER_DEVICES["550Ti"]
        mix = get_kernel(HashAlgorithm.MD5).mix_for(dev.family)
        r1 = simulate_kernel_cycles(dev, mix, interleave=1)
        r2 = simulate_kernel_cycles(dev, mix, interleave=2)
        assert r2.mkeys_per_second(dev) > r1.mkeys_per_second(dev) * 1.15
        assert r2.dual_issue_fraction > 0.2

    def test_interleave_useless_without_dual_issue(self):
        dev = PAPER_DEVICES["8800"]
        mix = get_kernel(HashAlgorithm.MD5).mix_for(dev.family)
        r1 = simulate_kernel_cycles(dev, mix, interleave=1)
        r2 = simulate_kernel_cycles(dev, mix, interleave=2)
        assert r2.cycles == pytest.approx(r1.cycles, rel=0.02)

    def test_1x_ops_per_cycle_is_issue_bound(self):
        dev = PAPER_DEVICES["8800"]
        mix = get_kernel(HashAlgorithm.MD5).mix_for(dev.family)
        r = simulate_kernel_cycles(dev, mix)
        assert r.ops_per_cycle == pytest.approx(8.0, rel=0.02)

    def test_more_warps_hide_latency_better(self):
        dev = PAPER_DEVICES["660"]
        mix = get_kernel(HashAlgorithm.MD5).mix_for(dev.family)
        few = simulate_kernel_cycles(dev, mix, warps=8)
        many = simulate_kernel_cycles(dev, mix, warps=64)
        assert many.cycles_per_hash < few.cycles_per_hash


class TestSimMechanics:
    def test_empty_mix_finishes_immediately(self):
        sim = MultiprocessorSim(ARCHITECTURES["2.1"])
        result = sim.run(InstructionMix({}))
        assert result.cycles == 0.0
        assert result.instructions == 0
        assert result.dual_issue_fraction == 0.0

    def test_warp_validation(self):
        with pytest.raises(ValueError):
            MultiprocessorSim(ARCHITECTURES["2.1"], warps=0)

    def test_all_instructions_issued(self):
        sim = MultiprocessorSim(ARCHITECTURES["2.1"], warps=4)
        mix = InstructionMix.of(IADD=20, SHIFT=5)
        result = sim.run(mix)
        assert result.instructions == 4 * 25

    def test_hashes_counts_lanes(self):
        sim = MultiprocessorSim(ARCHITECTURES["3.0"], warps=4)
        result = sim.run(InstructionMix.of(IADD=10))
        assert result.hashes == 128
