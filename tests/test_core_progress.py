"""Tests for resumable search checkpoints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cracking import CrackTarget, crack_interval
from repro.core.progress import ProgressLog
from repro.keyspace import Charset, Interval

ABC = Charset("abc", name="abc")


class TestProgressLog:
    def test_fresh_log(self):
        log = ProgressLog(total=100)
        assert log.fraction_done == 0.0
        assert not log.is_complete
        assert log.remaining() == [Interval(0, 100)]
        assert log.check_invariant()

    def test_mark_done_and_gaps(self):
        log = ProgressLog(total=100)
        log.mark_done(Interval(10, 30))
        log.mark_done(Interval(50, 60))
        assert log.remaining() == [Interval(0, 10), Interval(30, 50), Interval(60, 100)]
        assert log.done_count == 30
        assert log.check_invariant()

    def test_adjacent_intervals_merge(self):
        log = ProgressLog(total=100)
        log.mark_done(Interval(0, 50))
        log.mark_done(Interval(50, 100))
        assert log.completed == [Interval(0, 100)]
        assert log.is_complete

    def test_double_work_rejected(self):
        log = ProgressLog(total=100)
        log.mark_done(Interval(10, 30))
        with pytest.raises(ValueError, match="overlaps"):
            log.mark_done(Interval(29, 40))

    def test_out_of_space_rejected(self):
        log = ProgressLog(total=100)
        with pytest.raises(ValueError, match="exceeds"):
            log.mark_done(Interval(90, 101))

    def test_next_chunk_serves_gaps_in_order(self):
        log = ProgressLog(total=100)
        log.mark_done(Interval(0, 20))
        assert log.next_chunk(15) == Interval(20, 35)
        log.mark_done(Interval(20, 35))
        assert log.next_chunk(1000) == Interval(35, 100)
        with pytest.raises(ValueError):
            log.next_chunk(0)

    def test_next_chunk_none_when_complete(self):
        log = ProgressLog(total=10)
        log.mark_done(Interval(0, 10))
        assert log.next_chunk(5) is None

    def test_matches_accumulate_sorted(self):
        log = ProgressLog(total=100)
        log.mark_done(Interval(50, 60), matches=[(55, "bb")])
        log.mark_done(Interval(0, 10), matches=[(3, "aa")])
        assert log.found == [(3, "aa"), (55, "bb")]

    def test_zero_total(self):
        log = ProgressLog(total=0)
        assert log.is_complete
        assert log.fraction_done == 1.0

    @settings(max_examples=40)
    @given(
        total=st.integers(1, 500),
        cuts=st.lists(st.tuples(st.integers(0, 499), st.integers(1, 60)), max_size=12),
    )
    def test_property_invariant_under_any_completion_order(self, total, cuts):
        log = ProgressLog(total=total)
        for start, size in cuts:
            interval = Interval(min(start, total), min(start + size, total))
            if not interval:
                continue
            try:
                log.mark_done(interval)
            except ValueError:
                continue  # overlapped earlier work: correctly rejected
            assert log.check_invariant()
        assert log.done_count + sum(iv.size for iv in log.remaining()) == total


class TestSerialization:
    def test_roundtrip(self):
        log = ProgressLog(total=62**12)  # bignum-friendly
        log.mark_done(Interval(0, 62**10), matches=[(42, "key")])
        clone = ProgressLog.from_json(log.to_json())
        assert clone.total == log.total
        assert clone.completed == log.completed
        assert clone.found == [(42, "key")]
        assert clone.check_invariant()


class TestResumableCrack:
    def test_stop_and_resume_equals_one_shot(self):
        target = CrackTarget.from_password("cba", ABC, min_length=1, max_length=4)
        space = target.space_size

        # Session 1: crack 40%, checkpoint, "crash".
        log = ProgressLog(total=space)
        while log.fraction_done < 0.4:
            chunk = log.next_chunk(1000)
            log.mark_done(chunk, crack_interval(target, chunk))
        snapshot = log.to_json()

        # Session 2: resume from JSON, finish the rest.
        resumed = ProgressLog.from_json(snapshot)
        while not resumed.is_complete:
            chunk = resumed.next_chunk(1000)
            resumed.mark_done(chunk, crack_interval(target, chunk))

        one_shot = crack_interval(target, Interval(0, space))
        assert resumed.found == one_shot
        assert ("cba" in [k for _, k in resumed.found])


class TestCorruptCheckpoints:
    """from_json must reject any ledger that breaks coverage, loudly."""

    def valid(self):
        return {"total": 100, "completed": [[0, 10], [20, 30]], "found": [[5, "aa"]]}

    def test_valid_document_restores(self):
        import json

        log = ProgressLog.from_json(json.dumps(self.valid()))
        assert log.done_count == 20
        assert log.found == [(5, "aa")]

    def test_not_json_at_all(self):
        from repro.core.progress import CorruptCheckpointError

        with pytest.raises(CorruptCheckpointError, match="not valid JSON"):
            ProgressLog.from_json("{{{ torn write")

    @pytest.mark.parametrize(
        "mutation, message",
        [
            ({"total": None}, "not a size"),
            ({"total": -5}, "not a size"),
            ({"total": "100"}, "not a size"),
            ({"completed": [[0, 10], [5, 20]]}, "overlap"),
            ({"completed": [[20, 30], [0, 10]]}, "overlap|unsorted"),
            ({"completed": [[0, 200]]}, "exceeds"),
            ({"completed": [[10, 0]]}, "malforms"),
            ({"completed": [[0]]}, "malforms"),
            ({"found": [[1]]}, "malforms"),
        ],
    )
    def test_each_corruption_is_rejected(self, mutation, message):
        import json

        from repro.core.progress import CorruptCheckpointError

        with pytest.raises(CorruptCheckpointError, match=message):
            ProgressLog.from_json(json.dumps({**self.valid(), **mutation}))

    @pytest.mark.parametrize("key", ["total", "completed", "found"])
    def test_missing_fields_rejected(self, key):
        import json

        from repro.core.progress import CorruptCheckpointError

        document = self.valid()
        del document[key]
        with pytest.raises(CorruptCheckpointError, match="missing"):
            ProgressLog.from_json(json.dumps(document))


class TestPendingChunks:
    def test_slices_gaps_in_order(self):
        from repro.core.progress import pending_chunks

        log = ProgressLog(total=100)
        log.mark_done(Interval(20, 50))
        chunks = pending_chunks(log, 15)
        assert chunks == [
            Interval(0, 15), Interval(15, 20),
            Interval(50, 65), Interval(65, 80), Interval(80, 95), Interval(95, 100),
        ]
        assert sum(c.size for c in chunks) == 70
        assert log.done_count == 30  # planning marks nothing done

    def test_budget_caps_the_plan(self):
        from repro.core.progress import pending_chunks

        log = ProgressLog(total=1000)
        chunks = pending_chunks(log, 64, budget=200)
        assert sum(c.size for c in chunks) == 200
        assert all(c.size <= 64 for c in chunks)

    def test_zero_budget_and_complete_log(self):
        from repro.core.progress import pending_chunks

        log = ProgressLog(total=10)
        assert pending_chunks(log, 4, budget=0) == []
        log.mark_done(Interval(0, 10))
        assert pending_chunks(log, 4) == []

    def test_bad_chunk_size_rejected(self):
        from repro.core.progress import pending_chunks

        with pytest.raises(ValueError, match="chunk_size"):
            pending_chunks(ProgressLog(total=10), 0)
