"""Fuzz and round-trip tests for the ``repro-api/v1`` wire contract.

Every document kind crossing the gateway is exercised by name here —
``submit``, ``control``, ``submitted``, ``job``, ``job-list``,
``events``, ``quota``, ``metrics``, ``error`` — which is exactly the
coverage the protocol-symmetry static check demands for the
:data:`REQUEST_VALIDATORS` / :data:`RESPONSE_VALIDATORS` registries.
"""

import hashlib
import random

import pytest

from repro.core.progress import ProgressLog
from repro.service.jobstore import JobSpec
from repro.service.wire import (
    API_SCHEMA,
    CONTROL_ACTIONS,
    REQUEST_VALIDATORS,
    RESPONSE_VALIDATORS,
    control_request,
    error_response,
    events_response,
    job_list_response,
    job_response,
    metrics_response,
    quota_response,
    safe_name,
    submit_request,
    submitted_response,
    validate_request,
    validate_response,
)


def spec_dict(password=b"dog"):
    return JobSpec(
        digest=hashlib.md5(password).digest(), charset="abcdefgo", max_length=3
    ).to_dict()


class FakeRecord:
    def __init__(self, job="t--j", state="queued", priority=2, message="m"):
        self.id = job
        self.state = state
        self.priority = priority
        self.message = message


def sample_documents():
    """One valid document per kind, built through the public builders."""
    log = ProgressLog(total=100)
    job = job_response(FakeRecord(), log, "t")
    return {
        "submit": submit_request(spec_dict(), priority=3, job="mine"),
        "control": control_request("pause"),
        "submitted": submitted_response("t--j", "t", 6, 100),
        "job": job,
        "job-list": job_list_response([job]),
        "events": events_response(
            "t--j", 2, ["line one"], "running", job["progress"], complete=False
        ),
        "quota": quota_response("t", 2, 16, 3, 50.0, 100.0, 99.5),
        "metrics": metrics_response({}),
        "error": error_response("boom", 404),
    }


class TestBuildersRoundTrip:
    """Every builder's output passes its own validator."""

    @pytest.mark.parametrize("kind", sorted(REQUEST_VALIDATORS))
    def test_request_kinds(self, kind):
        assert validate_request(sample_documents()[kind]) == []

    @pytest.mark.parametrize("kind", sorted(RESPONSE_VALIDATORS))
    def test_response_kinds(self, kind):
        assert validate_response(sample_documents()[kind]) == []

    def test_registries_cover_every_sample_and_nothing_else(self):
        kinds = set(REQUEST_VALIDATORS) | set(RESPONSE_VALIDATORS)
        assert kinds == set(sample_documents())

    def test_request_and_response_sides_are_disjoint(self):
        assert not set(REQUEST_VALIDATORS) & set(RESPONSE_VALIDATORS)
        # A valid request is never a valid response and vice versa.
        docs = sample_documents()
        for kind in REQUEST_VALIDATORS:
            assert validate_response(docs[kind]) != []
        for kind in RESPONSE_VALIDATORS:
            assert validate_request(docs[kind]) != []


class TestValidatorRejections:
    def test_wrong_schema_rejected(self):
        document = control_request("pause")
        document["schema"] = "repro-api/v0"
        assert any("schema" in p for p in validate_request(document))

    def test_unknown_kind_rejected(self):
        assert validate_request({"schema": API_SCHEMA, "kind": "nuke"}) != []

    @pytest.mark.parametrize("junk", [None, 7, "hi", [1, 2], b"x"])
    def test_non_object_bodies_rejected(self, junk):
        assert validate_request(junk) != []
        assert validate_response(junk) != []

    def test_submit_rejects_bad_spec_priority_and_job(self):
        bad_spec = submit_request({"digest": "zz"})
        assert any("spec" in p for p in validate_request(bad_spec))
        bad_priority = submit_request(spec_dict(), priority=0)
        assert any("priority" in p for p in validate_request(bad_priority))
        for name in ("", "a--b", "../escape", "x" * 65):
            doc = submit_request(spec_dict(), job="ok")
            doc["job"] = name
            assert validate_request(doc) != []

    def test_control_rejects_unknown_actions(self):
        for action in ("destroy", "", None, 3):
            doc = control_request("pause")
            doc["action"] = action
            assert validate_request(doc) != []
        for action in CONTROL_ACTIONS:
            assert validate_request(control_request(action)) == []

    def test_error_status_must_be_an_http_error_code(self):
        assert validate_response(error_response("x", 200)) != []
        assert validate_response(error_response("", 404)) != []

    def test_events_progress_and_flags_checked(self):
        good = sample_documents()["events"]
        for field, bad in [
            ("complete", "yes"),
            ("cursor", -1),
            ("events", [1, 2]),
            ("state", "exploded"),
            ("progress", {"done": -1, "total": 0, "found": []}),
        ]:
            doc = dict(good)
            doc[field] = bad
            assert validate_response(doc) != [], field

    def test_job_list_entries_must_be_job_documents(self):
        assert validate_response(job_list_response([{"kind": "quota"}])) != []

    def test_metrics_payload_must_satisfy_metrics_schema(self):
        assert validate_response(metrics_response({"schema": "nope"})) != []
        assert validate_response(metrics_response({})) == []

    def test_quota_numbers_checked(self):
        good = sample_documents()["quota"]
        for field in ("weight", "max_queued", "active", "rate", "burst", "tokens"):
            doc = dict(good)
            doc[field] = "many"
            assert validate_response(doc) != [], field


class TestFuzz:
    """Random mutations must be *rejected*, never crash a validator."""

    JUNK = [None, True, 0, -3, 2**70, 1.5, "", "x", [], [[]], {}, {"a": 1}]

    def mutate(self, rng, document):
        doc = dict(document)
        op = rng.randrange(3)
        if op == 0 and doc:  # drop a field
            doc.pop(rng.choice(sorted(doc)))
        elif op == 1 and doc:  # corrupt a field
            doc[rng.choice(sorted(doc))] = rng.choice(self.JUNK)
        else:  # graft an alien field (must not crash; may stay valid)
            doc[rng.choice("abcdef")] = rng.choice(self.JUNK)
        return doc

    def test_mutated_documents_never_crash(self):
        rng = random.Random(0xC0FFEE)
        docs = sample_documents()
        for _ in range(2000):
            kind = rng.choice(sorted(docs))
            mutated = self.mutate(rng, docs[kind])
            problems = (
                validate_request(mutated)
                if kind in REQUEST_VALIDATORS
                else validate_response(mutated)
            )
            assert isinstance(problems, list)
            # Dropping or corrupting schema/kind/required fields must fail.
            if "schema" not in mutated or "kind" not in mutated:
                assert problems != []

    def test_deeply_nested_garbage(self):
        nested = {"schema": API_SCHEMA, "kind": "submit", "spec": {}}
        for _ in range(50):
            nested = {"schema": API_SCHEMA, "kind": "submit", "spec": nested}
        assert validate_request(nested) != []


class TestSafeName:
    @pytest.mark.parametrize("name", ["a", "job-1", "A.b_c-9", "x" * 64])
    def test_accepts(self, name):
        assert safe_name(name)

    @pytest.mark.parametrize(
        "name",
        ["", "a--b", "-lead", ".lead", "_lead", "sp ace", "sl/ash", "x" * 65,
         None, 3, b"bytes", "unié"],
    )
    def test_rejects(self, name):
        assert not safe_name(name)
