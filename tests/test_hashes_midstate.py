"""Tests for the cached-midstate long-prefix path (Section IV)."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashes.midstate import MidstateTarget, crack_midstate, pack_final_blocks
from repro.keyspace import Charset, Interval
from repro.kernels.variants import HashAlgorithm

ABC = Charset("abc", name="abc")

LONG_PREFIX = b"portal-v2::" + b"\x11" * 64 + b"::user="  # spans >1 block


class TestMidstateTarget:
    def test_from_password_and_verify(self):
        target = MidstateTarget.from_password("cab", ABC, LONG_PREFIX)
        assert target.verify("cab")
        assert not target.verify("abc")
        assert target.digest == hashlib.md5(LONG_PREFIX + b"cab").digest()

    def test_validation(self):
        with pytest.raises(ValueError, match="digest"):
            MidstateTarget(HashAlgorithm.MD5, b"x", ABC, b"p")
        digest = hashlib.md5(b"x").digest()
        with pytest.raises(ValueError, match="invalid length window"):
            MidstateTarget(HashAlgorithm.MD5, digest, ABC, b"p", 5, 3)
        # Remainder 50 bytes + 10-char key: no room for padding.
        with pytest.raises(ValueError, match="padding room"):
            MidstateTarget(HashAlgorithm.MD5, digest, ABC, b"p" * 50, 1, 10)

    def test_midstate_equals_streaming_hashlib(self):
        # The cached state equals hashlib's internal state after the whole
        # blocks: verify indirectly by finishing the hash both ways.
        target = MidstateTarget.from_password("ab", ABC, LONG_PREFIX)
        chars = np.frombuffer(b"ab", dtype=np.uint8).reshape(1, 2)
        blocks = pack_final_blocks(target, chars)
        from repro.hashes.vec_md5 import md5_compress_batch

        mid = target.midstate()
        state = tuple(np.full(1, np.uint32(x), dtype=np.uint32) for x in mid)
        got = np.stack(md5_compress_batch(blocks, state=state), axis=1)
        digest = got[0].astype("<u4").tobytes()
        assert digest == hashlib.md5(LONG_PREFIX + b"ab").digest()


class TestCrackMidstate:
    @pytest.mark.parametrize("algorithm", list(HashAlgorithm))
    def test_finds_planted_key_behind_long_salt(self, algorithm):
        target = MidstateTarget.from_password(
            "bca", ABC, LONG_PREFIX, algorithm=algorithm, max_length=3
        )
        matches = crack_midstate(target, batch_size=77)
        assert (target.mapping.index_of("bca"), "bca") in matches
        assert all(target.verify(k) for _, k in matches)

    def test_prefix_beyond_single_block_capacity(self):
        # This salt (82 bytes) is impossible for the single-block engine;
        # the midstate path handles it with one compression per key.
        assert len(LONG_PREFIX) > 55
        target = MidstateTarget.from_password("cc", ABC, LONG_PREFIX, max_length=2)
        matches = crack_midstate(target)
        assert [k for _, k in matches] == ["cc"]

    def test_exact_block_boundary_prefix(self):
        prefix = b"B" * 128  # remainder is empty
        target = MidstateTarget.from_password("ab", ABC, prefix, max_length=2)
        matches = crack_midstate(target)
        assert [k for _, k in matches] == ["ab"]

    def test_short_prefix_also_works(self):
        # Zero whole blocks: midstate is just the init state.
        target = MidstateTarget.from_password("ba", ABC, b"s:", max_length=2)
        assert [k for _, k in crack_midstate(target)] == ["ba"]

    def test_interval_restriction(self):
        target = MidstateTarget.from_password("cb", ABC, LONG_PREFIX, max_length=2)
        index = target.mapping.index_of("cb")
        assert crack_midstate(target, Interval(0, index)) == []
        assert crack_midstate(target, Interval(index, index + 1)) == [(index, "cb")]

    def test_invalid_args(self):
        target = MidstateTarget.from_password("ab", ABC, b"p", max_length=2)
        with pytest.raises(ValueError):
            crack_midstate(target, batch_size=0)
        with pytest.raises(IndexError):
            crack_midstate(target, Interval(0, target.space_size + 1))

    @settings(max_examples=10, deadline=None)
    @given(
        prefix_len=st.integers(0, 120),
        key=st.text(alphabet="abc", min_size=1, max_size=3),
    )
    def test_property_any_prefix_length(self, prefix_len, key):
        from hypothesis import assume

        # The fast path needs padding room in the final block.
        assume(prefix_len % 64 + 3 <= 64 - 9)
        prefix = (b"q" * prefix_len)[:prefix_len]
        target = MidstateTarget.from_password(key, ABC, prefix, max_length=3)
        matches = crack_midstate(target, batch_size=64)
        assert (target.mapping.index_of(key), key) in matches
