"""Tests for the instrumented tracer (Table III methodology)."""

import pytest

from repro.hashes.md5 import MD5_INIT, md5_compress
from repro.kernels import TracedOps
from repro.kernels.isa import SourceOp
from repro.kernels.trace import (
    trace_md5_compress,
    trace_md5_reversal,
    trace_md5_steps,
    trace_sha1_compress,
    trace_sha1_schedule,
    trace_sha1_steps,
    trace_sha256_compress,
)


class TestTracedOpsTransparency:
    """Tracing must not change results — it is the same algorithm."""

    def test_md5_result_identical_under_tracing(self):
        block = list(range(16))
        plain = md5_compress(MD5_INIT, block)
        traced = md5_compress(MD5_INIT, block, ops=TracedOps())
        assert plain == traced

    def test_rotl_zero_is_free(self):
        ops = TracedOps()
        assert ops.rotl(123, 0) == 123
        assert ops.mix.total == 0

    def test_rotl_counts_one_rotate(self):
        ops = TracedOps()
        ops.rotl(1, 7)
        assert ops.mix[SourceOp.ROTATE] == 1
        assert ops.mix[SourceOp.ADD] == 0
        assert ops.mix[SourceOp.SHIFT] == 0


class TestMD5Trace:
    def test_full_compress_counts(self):
        # Derivable by hand from RFC 1321: 64 steps x 4 explicit adds + 4
        # feedforward adds = 260; 64 rotates; 160 logicals; 48 NOTs.
        mix = trace_md5_compress()
        assert mix[SourceOp.ADD] == 260
        assert mix[SourceOp.ROTATE] == 64
        assert mix[SourceOp.LOGICAL] == 160
        assert mix[SourceOp.NOT] == 48
        assert mix[SourceOp.SHIFT] == 0

    def test_table3_row_close_to_paper(self):
        # Paper Table III: ADD 320, AND/OR/XOR 160, shift 128.  Our trace
        # includes the 4 feedforward adds (324); shifts/logicals are exact.
        row = trace_md5_compress().as_table3_row()
        assert row["32-bit integer ADD"] == 324
        assert row["32-bit bitwise AND/OR/XOR"] == 160
        assert row["32-bit integer shift"] == 128

    def test_rotate_amount_16_appears_four_times_in_full_md5(self):
        mix = trace_md5_compress()
        assert mix.rotate_amounts[16] == 4

    def test_rotate_amount_16_appears_three_times_in_46_steps(self):
        # Steps 34, 38, 42 rotate by 16; step 46 is past the early exit.
        # This is why the paper's Table VI lists exactly 3 PRMT.
        mix = trace_md5_steps(46)
        assert mix.rotate_amounts[16] == 3

    def test_step_prefix_monotone(self):
        assert trace_md5_steps(46).total < trace_md5_steps(49).total < trace_md5_steps(64).total

    def test_feedforward_flag(self):
        assert (
            trace_md5_steps(64, include_feedforward=True)[SourceOp.ADD]
            == trace_md5_steps(64)[SourceOp.ADD] + 4
        )

    def test_bounds(self):
        with pytest.raises(ValueError):
            trace_md5_steps(65)
        with pytest.raises(ValueError):
            trace_md5_steps(-1)

    def test_reversal_cost_is_small(self):
        # The reversal runs once per dispatched interval; it must be within
        # a small constant of 15 forward steps' cost.
        reversal = trace_md5_reversal()
        full = trace_md5_compress()
        assert reversal.total < full.total / 2


class TestSHA1Trace:
    def test_full_compress_counts(self):
        # 80 steps x 4 adds + 5 feedforward = 325 adds; rotates: 80 rot5 +
        # 80 rot30 + 64 schedule rot1 = 224; logicals: 60+80+100 round
        # functions + 192 schedule XORs = 432; 20 NOTs from Ch.
        mix = trace_sha1_compress()
        assert mix[SourceOp.ADD] == 325
        assert mix[SourceOp.ROTATE] == 224
        assert mix[SourceOp.LOGICAL] == 432
        assert mix[SourceOp.NOT] == 20

    def test_schedule_alone(self):
        mix = trace_sha1_schedule()
        assert mix[SourceOp.ROTATE] == 64
        assert mix[SourceOp.LOGICAL] == 192
        assert mix[SourceOp.ADD] == 0

    def test_76_step_kernel_expands_less_schedule(self):
        # Only schedule words consumed by the executed steps are expanded.
        mix76 = trace_sha1_steps(76)
        mix80 = trace_sha1_steps(80)
        assert mix76.total < mix80.total
        # 4 fewer steps and 4 fewer schedule expansions.
        assert mix80[SourceOp.ADD] - mix76[SourceOp.ADD] == 16

    def test_bounds(self):
        with pytest.raises(ValueError):
            trace_sha1_steps(81)

    def test_paper_addlop_to_shiftmad_ratio_ballpark(self):
        # Section V: SHA1 "shows an even lower ratio ... (~1.53)"; our
        # lowered trace lands in the same regime, clearly below MD5's 2.93.
        from repro.kernels.compiler import CC_2X

        sha1 = CC_2X.lower(trace_sha1_steps(76))
        assert 1.3 < sha1.ratio_addlop_to_shiftmad < 1.9


class TestSHA256Trace:
    def test_counts_nonzero_and_plausible(self):
        mix = trace_sha256_compress()
        # SHA256 uses plain shifts (sigma functions) unlike MD5/SHA1.
        assert mix[SourceOp.SHIFT] > 0
        assert mix[SourceOp.ROTATE] > 300  # 6 rotations/step x 64 + schedule
        assert mix[SourceOp.ADD] > 400
