"""Tests for the symbolic constant-folding specializer."""

import pytest

from repro.hashes.padding import Endian
from repro.kernels.isa import SourceOp
from repro.kernels.specialize import (
    CONST,
    VAR,
    ZERO,
    SymbolicOps,
    schedule_taint,
    specialized_md5_mix,
    specialized_sha1_mix,
    word_tags_for_length,
)
from repro.kernels.trace import trace_md5_steps, trace_sha1_steps


class TestSymbolicOps:
    def test_const_folding(self):
        ops = SymbolicOps()
        assert ops.add(CONST, CONST) is CONST
        assert ops.band(CONST, ZERO) is CONST or ops.band(CONST, ZERO) is ZERO
        assert ops.mix.total == 0  # nothing costs at compile time

    def test_zero_identities_are_free(self):
        ops = SymbolicOps()
        assert ops.add(VAR, ZERO) is VAR
        assert ops.bxor(VAR, ZERO) is VAR
        assert ops.bor(ZERO, VAR) is VAR
        assert ops.mix.total == 0

    def test_and_with_zero_absorbs_free(self):
        ops = SymbolicOps()
        assert ops.band(VAR, ZERO) is ZERO
        assert ops.mix.total == 0

    def test_var_operations_cost(self):
        ops = SymbolicOps()
        ops.add(VAR, CONST)
        ops.band(VAR, VAR)
        ops.bnot(VAR)
        ops.rotl(VAR, 7)
        ops.shl(VAR, 3)
        assert ops.mix[SourceOp.ADD] == 1
        assert ops.mix[SourceOp.LOGICAL] == 1
        assert ops.mix[SourceOp.NOT] == 1
        assert ops.mix[SourceOp.ROTATE] == 1
        assert ops.mix[SourceOp.SHIFT] == 1

    def test_rotate_of_constant_free(self):
        ops = SymbolicOps()
        assert ops.rotl(CONST, 5) is CONST
        assert ops.rotl(ZERO, 5) is ZERO
        assert ops.rotl(VAR, 0) is VAR  # zero rotation is the identity
        assert ops.mix.total == 0

    def test_const_lifts_ints(self):
        ops = SymbolicOps()
        assert ops.const(0) is ZERO
        assert ops.const(0x80) is CONST
        assert ops.add(VAR, 0) is VAR  # int zero lifted and folded
        assert ops.mix.total == 0


class TestWordTags:
    def test_length_4_md5(self):
        tags = word_tags_for_length(4, Endian.LITTLE)
        assert tags[0] is VAR  # the 4 key bytes
        assert tags[1] is CONST  # 0x80 padding byte
        assert all(t is ZERO for t in tags[2:14])
        assert tags[14] is CONST  # bit length (LE placement)
        assert tags[15] is ZERO

    def test_length_4_sha1_big_endian_length_position(self):
        tags = word_tags_for_length(4, Endian.BIG)
        assert tags[0] is VAR
        assert tags[14] is ZERO
        assert tags[15] is CONST  # bit length in the last word for BE

    def test_length_6_has_two_var_words(self):
        tags = word_tags_for_length(6, Endian.LITTLE)
        assert tags[0] is VAR and tags[1] is VAR
        assert tags[2] is ZERO

    def test_length_0(self):
        tags = word_tags_for_length(0, Endian.LITTLE)
        assert tags[0] is CONST  # just the padding byte
        assert VAR not in tags

    def test_bounds(self):
        with pytest.raises(ValueError):
            word_tags_for_length(56, Endian.LITTLE)
        with pytest.raises(ValueError):
            word_tags_for_length(-1, Endian.BIG)


class TestSpecializedMixes:
    def test_specialized_never_exceeds_unspecialized(self):
        for steps in (46, 64):
            assert specialized_md5_mix(steps).total <= trace_md5_steps(steps).total
        for steps in (76, 80):
            assert specialized_sha1_mix(steps).total <= trace_sha1_steps(steps).total

    def test_md5_rotation_count_is_step_count(self):
        # One rotate per executed step survives specialization.
        assert specialized_md5_mix(46)[SourceOp.ROTATE] == 46
        assert specialized_md5_mix(64)[SourceOp.ROTATE] == 64

    def test_md5_46_matches_paper_shape(self):
        mix = specialized_md5_mix(46)
        # Paper Table V (2.x): IADD 150, LOP 120 after lowering; source
        # counts land within a few instructions.
        assert 140 <= mix[SourceOp.ADD] <= 155
        assert 115 <= mix[SourceOp.LOGICAL] <= 125

    def test_sha1_schedule_folding_saves_rotates(self):
        spec = specialized_sha1_mix(80)
        full = trace_sha1_steps(80)
        assert spec[SourceOp.ROTATE] < full[SourceOp.ROTATE]
        assert spec[SourceOp.LOGICAL] < full[SourceOp.LOGICAL]

    def test_step_bounds(self):
        with pytest.raises(ValueError):
            specialized_md5_mix(65)
        with pytest.raises(ValueError):
            specialized_sha1_mix(81)

    def test_longer_keys_cost_almost_nothing_extra(self):
        # With single_var_word the inner loop varies only word 0; other key
        # words are loop constants.  Length 8 turns one zero word into a
        # constant word (the padding byte moves), costing 2 extra adds in
        # 46 steps — "execution time is essentially independent of the
        # string length" (Section IV).
        short = specialized_md5_mix(46, key_length=4)
        long_ = specialized_md5_mix(46, key_length=8)
        assert long_.total - short.total <= 3
        assert long_[SourceOp.ROTATE] == short[SourceOp.ROTATE]

    def test_multi_var_words_cost_more(self):
        single = specialized_md5_mix(64, key_length=8, single_var_word=True)
        multi = specialized_md5_mix(64, key_length=8, single_var_word=False)
        assert multi.total >= single.total


class TestScheduleTaint:
    def test_w16_is_first_tainted_expansion(self):
        taint = schedule_taint()
        assert taint[0] is True
        assert not any(taint[1:16])
        assert taint[16] is True  # W16 = rotl1(W13 ^ W8 ^ W2 ^ W0)
        assert taint[17] is False
        assert taint[18] is False
        assert taint[19] is True  # depends on W16

    def test_taint_saturates(self):
        taint = schedule_taint()
        # By the last rounds everything depends on the candidate word.
        assert all(taint[64:])

    def test_custom_var_words(self):
        taint = schedule_taint(var_words=frozenset({15}))
        assert taint[15] is True
        assert taint[16] is False  # W16 does not read W15
        assert taint[18] is True  # W18 = f(W15, ...)
