"""End-to-end over real sockets: the acceptance scenario, scaled down.

Three TCP workers; one is killed abruptly mid-run, one crawls with an
artificial per-chunk delay.  The master must still finish the exhaustive
search, requeue only the dead worker's interval, and leave a metrics
document that validates against repro-metrics/v2.
"""

import threading
import time

from repro.apps.cracking import CrackTarget
from repro.cluster.health import HealthConfig
from repro.cluster.protocol import ControlMessage
from repro.cluster.runtime import DistributedMaster
from repro.cluster.transport import TcpMasterTransport, WorkerClient
from repro.keyspace import Charset
from repro.obs import Recorder
from repro.obs.schema import MetricNames, validate_metrics

ABCD = Charset("abcd", name="abcd")


def test_kill_and_straggler_tcp_run():
    target = CrackTarget.from_password("dcba", ABCD, min_length=1, max_length=4)
    recorder = Recorder()
    transport = TcpMasterTransport(recorder=recorder).start()
    host, port = transport.address
    clients = {
        # Per-chunk sleep: quick/doomed dawdle a little so the run is
        # still in flight when doomed dies; laggy is the 300ms straggler
        # whose deadline must scale instead of condemning it.
        "quick": WorkerClient("quick", host, port, heartbeat_interval=0.1,
                              slowdown=0.03),
        "laggy": WorkerClient("laggy", host, port, heartbeat_interval=0.1,
                              slowdown=0.3),
        "doomed": WorkerClient("doomed", host, port, heartbeat_interval=0.1,
                               slowdown=0.03),
    }
    threads = [
        threading.Thread(target=c.run, daemon=True) for c in clients.values()
    ]
    for t in threads:
        t.start()

    def assassin():
        # Strike as soon as the victim has proven it was a working node.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if clients["doomed"].stats.chunks >= 1:
                break
            time.sleep(0.01)
        clients["doomed"].stop()

    killer = threading.Thread(target=assassin, daemon=True)
    try:
        assert transport.wait_for_workers(3, timeout=10)
        killer.start()
        master = DistributedMaster(
            target,
            transport=transport,
            chunk_size=8,
            reply_timeout=5.0,
            health=HealthConfig(heartbeat_interval=0.1),
        )
        result = master.run(recorder=recorder)
    finally:
        for c in clients.values():
            c.stop()
        transport.broadcast(ControlMessage("shutdown").encode())
        killer.join(timeout=10)
        for t in threads:
            t.join(timeout=10)
        transport.close()

    assert "dcba" in result.keys
    assert result.progress.is_complete
    assert result.progress.check_invariant()
    assert result.heartbeats > 0
    # Only the murdered worker died; its loss was requeued and absorbed.
    assert "doomed" in result.dead_workers
    assert "quick" not in result.dead_workers
    assert "laggy" not in result.dead_workers
    assert result.requeued > 0
    requeue_events = recorder.events_named(MetricNames.EVENT_CHUNK_REQUEUED)
    assert requeue_events
    assert all(e["fields"]["worker"] == "doomed" for e in requeue_events)
    dead_events = recorder.events_named(MetricNames.EVENT_WORKER_DEAD)
    assert {e["fields"]["worker"] for e in dead_events} == {"doomed"}
    # The exported document is a valid repro-metrics/v2 artifact.
    assert result.metrics is not None
    assert validate_metrics(result.metrics) == []
