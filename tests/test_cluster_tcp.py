"""End-to-end over real sockets: the acceptance scenario, scaled down.

Three TCP workers; one is killed abruptly mid-run, one crawls with an
artificial per-chunk delay.  The master must still finish the exhaustive
search, requeue only the dead worker's interval, and leave a metrics
document that validates against repro-metrics/v2.
"""

import threading
import time

from repro.apps.cracking import CrackTarget
from repro.cluster.health import HealthConfig
from repro.cluster.protocol import ControlMessage
from repro.cluster.runtime import DistributedMaster
from repro.cluster.transport import TcpMasterTransport, WorkerClient
from repro.keyspace import Charset
from repro.obs import Recorder
from repro.obs.schema import MetricNames, validate_metrics

ABCD = Charset("abcd", name="abcd")


def test_kill_and_straggler_tcp_run():
    target = CrackTarget.from_password("dcba", ABCD, min_length=1, max_length=4)
    recorder = Recorder()
    transport = TcpMasterTransport(recorder=recorder).start()
    host, port = transport.address
    clients = {
        # Per-chunk sleep: quick/doomed dawdle a little so the run is
        # still in flight when doomed dies; laggy is the 300ms straggler
        # whose deadline must scale instead of condemning it.
        "quick": WorkerClient("quick", host, port, heartbeat_interval=0.1,
                              slowdown=0.03),
        "laggy": WorkerClient("laggy", host, port, heartbeat_interval=0.1,
                              slowdown=0.3),
        "doomed": WorkerClient("doomed", host, port, heartbeat_interval=0.1,
                               slowdown=0.03),
    }
    threads = [
        threading.Thread(target=c.run, daemon=True) for c in clients.values()
    ]
    for t in threads:
        t.start()

    def assassin():
        # Strike as soon as the victim has proven it was a working node.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if clients["doomed"].stats.chunks >= 1:
                break
            time.sleep(0.01)
        clients["doomed"].stop()

    killer = threading.Thread(target=assassin, daemon=True)
    try:
        assert transport.wait_for_workers(3, timeout=10)
        killer.start()
        master = DistributedMaster(
            target,
            transport=transport,
            chunk_size=8,
            reply_timeout=5.0,
            health=HealthConfig(heartbeat_interval=0.1),
        )
        result = master.run(recorder=recorder)
    finally:
        for c in clients.values():
            c.stop()
        transport.broadcast(ControlMessage("shutdown").encode())
        killer.join(timeout=10)
        for t in threads:
            t.join(timeout=10)
        transport.close()

    assert "dcba" in result.keys
    assert result.progress.is_complete
    assert result.progress.check_invariant()
    assert result.heartbeats > 0
    # Only the murdered worker died; its loss was requeued and absorbed.
    assert "doomed" in result.dead_workers
    assert "quick" not in result.dead_workers
    assert "laggy" not in result.dead_workers
    assert result.requeued > 0
    requeue_events = recorder.events_named(MetricNames.EVENT_CHUNK_REQUEUED)
    assert requeue_events
    assert all(e["fields"]["worker"] == "doomed" for e in requeue_events)
    dead_events = recorder.events_named(MetricNames.EVENT_WORKER_DEAD)
    assert {e["fields"]["worker"] for e in dead_events} == {"doomed"}
    # The exported document is a valid repro-metrics/v2 artifact.
    assert result.metrics is not None
    assert validate_metrics(result.metrics) == []


def test_evicted_worker_stops_with_typed_error_instead_of_reconnecting():
    """The satellite fix: a master-initiated Evict used to trap the
    client in its reconnect loop forever (every successful registration
    reset the failure count).  Eviction is now terminal — the client
    raises :class:`EvictedError` and never dials back in."""
    from repro.cluster.elastic import MemberRegistry
    from repro.cluster.transport import EvictedError

    target = CrackTarget.from_password("cba", ABCD, min_length=1, max_length=3)
    registry = MemberRegistry()
    registry.evict("banned", reason="operator ban")
    transport = TcpMasterTransport().start()
    host, port = transport.address
    banned = WorkerClient("banned", host, port, heartbeat_interval=0.1)
    steady = WorkerClient("steady", host, port, heartbeat_interval=0.1)
    raised = []

    def run_banned():
        try:
            banned.run()
        except EvictedError as exc:
            raised.append(exc)

    threads = [
        threading.Thread(target=run_banned, daemon=True),
        threading.Thread(target=steady.run, daemon=True),
    ]
    for t in threads:
        t.start()
    try:
        assert transport.wait_for_workers(2, timeout=10)
        master = DistributedMaster(
            target,
            transport=transport,
            chunk_size=8,
            health=HealthConfig(heartbeat_interval=0.1),
            membership=registry,
        )
        result = master.run()
    finally:
        steady.stop()
        banned.stop()
        transport.broadcast(ControlMessage("shutdown").encode())
        for t in threads:
            t.join(timeout=10)
        transport.close()

    assert "cba" in result.keys
    assert result.progress.is_complete
    assert result.progress.check_invariant()
    assert len(raised) == 1
    assert raised[0].worker == "banned"
    assert "evicted" in str(raised[0])
    # The client stopped at the eviction frame: no reconnect attempts.
    assert banned.stats.reconnects == 0
    # The surviving worker was welcomed into the membership.
    assert steady.stats.welcomes >= 1
    assert steady.stats.cluster_members >= 1
