"""Tests for the DES engine and cluster entity types."""

import pytest

from repro.cluster import ClusterNode, GPUWorker, LinkSpec, Simulator
from repro.cluster.node import GATHER_BYTES, SCATTER_BYTES


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        assert sim.run() == 3.0
        assert log == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(2.0, lambda: log.append(sim.now))

        sim.schedule(1.0, first)
        assert sim.run() == 3.0
        assert log == [1.0, 3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_until_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        assert sim.run(until=2.0) == 2.0
        assert log == [1]
        assert sim.pending == 1

    def test_event_budget(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError, match="budget"):
            sim.run(max_events=100)

    def test_at_absolute_time(self):
        sim = Simulator()
        hits = []
        sim.at(4.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [4.0]


class TestLinkSpec:
    def test_transfer_time(self):
        link = LinkSpec(latency=1e-3, bandwidth=1e6)
        assert link.transfer_time(1000) == pytest.approx(1e-3 + 1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(latency=-1)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=0)

    def test_payloads_are_small(self):
        # Section II: "our approach requires a minimal amount of memory
        # (less than 1 Kbyte)" — the wire payloads respect that.
        assert SCATTER_BYTES < 1024
        assert GATHER_BYTES < 1024


class TestGPUWorker:
    def test_defaults(self):
        w = GPUWorker("x", throughput=1e6)
        assert w.theoretical == 1e6
        assert w.launch.peak_rate == 1e6

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUWorker("x", throughput=0)

    def test_compute_time_uses_launch_model(self):
        w = GPUWorker("x", throughput=1e6)
        assert w.compute_time(1_000_000) > 1.0  # 1 s of hashing + overheads


class TestClusterNode:
    def build(self):
        fast = GPUWorker("fast", 4e6)
        slow = GPUWorker("slow", 1e6)
        leaf = ClusterNode("leaf", devices=[slow])
        return ClusterNode("root", devices=[fast], children=[leaf]), fast, slow

    def test_aggregates(self):
        root, fast, slow = self.build()
        assert root.local_throughput == 4e6
        assert root.aggregate_throughput == 5e6
        assert root.aggregate_theoretical == 5e6

    def test_subtree_walks(self):
        root, *_ = self.build()
        assert [n.name for n in root.subtree_nodes()] == ["root", "leaf"]
        assert [d.name for d in root.subtree_devices()] == ["fast", "slow"]

    def test_find(self):
        root, *_ = self.build()
        assert root.find("leaf").name == "leaf"
        with pytest.raises(KeyError):
            root.find("nope")

    def test_empty_node_rejected(self):
        with pytest.raises(ValueError, match="neither devices nor children"):
            ClusterNode("empty")

    def test_validate_tree_duplicates(self):
        dup1 = ClusterNode("n", devices=[GPUWorker("a", 1e6)])
        dup2 = ClusterNode("n", devices=[GPUWorker("b", 1e6)])
        root = ClusterNode("root", devices=[GPUWorker("c", 1e6)], children=[dup1, dup2])
        with pytest.raises(ValueError, match="duplicate node names"):
            root.validate_tree()
