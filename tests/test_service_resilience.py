"""Client-side resilience: retry policy, circuit breaker, reconnects.

The breaker state machine runs on an injected clock (no sleeping, same
style as the HealthMonitor tests).  The client-level tests drive a real
:class:`GatewayClient` against a real gateway where possible, and patch
the single-attempt transport (``_once``) where the failure mode — a stale
keep-alive socket dying mid-request — is awkward to stage with a live
server.
"""

import hashlib
import random
import socket
import threading

import pytest

from repro.cluster.health import BackoffPolicy
from repro.service import (
    ApiKeyring,
    ApiServer,
    ApiServerThread,
    BreakerConfig,
    BreakerRegistry,
    CircuitBreaker,
    CircuitOpenError,
    GatewayClient,
    GatewayUnreachable,
    JobStore,
    RetryPolicy,
    TenantConfig,
    TenantRegistry,
)
from repro.service.client import _MidRequestFailed
from repro.service.resilience import CLOSED, HALF_OPEN, OPEN

KEYS = {"k-acme": "acme"}
TENANTS = [TenantConfig("acme", max_queued=32)]


class Clock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def fast_retry(attempts=3):
    """A retry policy whose sleeps are negligible in tests."""
    return RetryPolicy(
        attempts=attempts, backoff=BackoffPolicy(base=0.001, cap=0.002, jitter=0.0)
    )


def spec(password=b"dog"):
    from repro.service.jobstore import JobSpec

    return JobSpec(
        digest=hashlib.md5(password).digest(), charset="abcdefgo", max_length=3
    ).to_dict()


@pytest.fixture()
def gateway(tmp_path):
    store = JobStore(tmp_path / "store")
    server = ApiServer(
        store, ApiKeyring(KEYS), TenantRegistry(TENANTS), poll_interval=0.01
    )
    thread = ApiServerThread(server)
    host, port = thread.start()
    try:
        yield f"http://{host}:{port}", store
    finally:
        thread.stop()


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestRetryPolicy:
    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)

    def test_delay_is_jittered_exponential(self):
        policy = RetryPolicy(
            attempts=4, backoff=BackoffPolicy(base=0.1, cap=10.0, jitter=0.0)
        )
        rng = random.Random(0)
        assert policy.delay(0, rng) == pytest.approx(0.1)
        assert policy.delay(1, rng) == pytest.approx(0.2)
        assert policy.delay(2, rng) == pytest.approx(0.4)


class TestCircuitBreaker:
    def test_threshold_failures_open_the_circuit(self):
        clock = Clock()
        breaker = CircuitBreaker(BreakerConfig(failures=3), clock=clock)
        assert breaker.state == CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.seconds_until_probe() == pytest.approx(5.0)

    def test_failures_outside_the_window_do_not_count(self):
        clock = Clock()
        breaker = CircuitBreaker(
            BreakerConfig(failures=3, window=30.0), clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(31.0)  # the first two age out of the sliding window
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = Clock()
        breaker = CircuitBreaker(
            BreakerConfig(failures=1, period=5.0), clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # concurrent callers keep fast-failing
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_for_a_fresh_period(self):
        clock = Clock()
        breaker = CircuitBreaker(
            BreakerConfig(failures=1, period=5.0), clock=clock
        )
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == OPEN
        assert breaker.seconds_until_probe() == pytest.approx(5.0)
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_success_clears_accumulated_failures(self):
        breaker = CircuitBreaker(BreakerConfig(failures=3), clock=Clock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failures=0)
        with pytest.raises(ValueError):
            BreakerConfig(window=0.0)


class TestBreakerRegistry:
    def test_same_host_shares_one_breaker(self):
        registry = BreakerRegistry()
        assert registry.breaker_for("h:1") is registry.breaker_for("h:1")
        assert registry.breaker_for("h:1") is not registry.breaker_for("h:2")

    def test_reset_forgets_state(self):
        registry = BreakerRegistry(BreakerConfig(failures=1))
        registry.breaker_for("h:1").record_failure()
        assert registry.breaker_for("h:1").state == OPEN
        registry.reset()
        assert registry.breaker_for("h:1").state == CLOSED

    def test_two_clients_share_quarantine_state(self):
        registry = BreakerRegistry(BreakerConfig(failures=1), clock=Clock())
        a = GatewayClient("http://h:1", "k", breakers=registry)
        b = GatewayClient("http://h:1", "k", breakers=registry)
        assert a._breaker is b._breaker


class TestClientRetry:
    def test_connect_failure_retries_then_raises_unreachable(self):
        client = GatewayClient(
            f"http://127.0.0.1:{free_port()}",
            "k-acme",
            timeout=0.5,
            retry=fast_retry(attempts=3),
            breakers=BreakerRegistry(BreakerConfig(failures=100)),
        )
        with pytest.raises(GatewayUnreachable):
            client.jobs()
        assert client.stats["retries"] == 2  # attempts - 1

    def test_breaker_opens_then_fast_fails(self):
        registry = BreakerRegistry(BreakerConfig(failures=2, period=60.0))
        client = GatewayClient(
            f"http://127.0.0.1:{free_port()}",
            "k-acme",
            timeout=0.5,
            retry=fast_retry(attempts=3),
            breakers=registry,
        )
        # Two connect failures open the circuit mid-loop; the third
        # attempt is refused without touching the network.
        with pytest.raises(CircuitOpenError):
            client.jobs()
        assert client.stats["breaker_fast_fails"] == 1
        # A fresh call fast-fails immediately (period=60 still running).
        with pytest.raises(CircuitOpenError):
            client.jobs()
        assert client.stats["breaker_fast_fails"] == 2

    def test_circuit_open_error_is_unreachable(self):
        # CLI exit-code mapping catches GatewayUnreachable; the breaker
        # refusal must ride the same path.
        assert issubclass(CircuitOpenError, GatewayUnreachable)

    def test_stale_keepalive_get_reconnects_and_retries(self, gateway, monkeypatch):
        url, _ = gateway
        client = GatewayClient(
            url,
            "k-acme",
            retry=fast_retry(attempts=3),
            breakers=BreakerRegistry(BreakerConfig(failures=100)),
        )
        real_once = GatewayClient._once
        calls = {"n": 0}

        def flaky_once(self, method, path, body, headers):
            calls["n"] += 1
            if calls["n"] == 1:  # the server closed our idle keep-alive
                self.close()
                raise _MidRequestFailed("stale socket")
            return real_once(self, method, path, body, headers)

        monkeypatch.setattr(GatewayClient, "_once", flaky_once)
        document = client.jobs()  # GET: idempotent, retried transparently
        assert document["kind"] == "job-list"
        assert calls["n"] == 2
        assert client.stats["retries"] == 1
        client.close()

    def test_mid_request_failure_never_blind_retries_a_post(
        self, gateway, monkeypatch
    ):
        url, store = gateway
        client = GatewayClient(
            url,
            "k-acme",
            retry=fast_retry(attempts=3),
            breakers=BreakerRegistry(BreakerConfig(failures=100)),
        )
        job = client.submit(spec(), job="victim")["job"]
        calls = {"n": 0}

        def dying_once(self, method, path, body, headers):
            calls["n"] += 1
            self.close()
            raise _MidRequestFailed("reset after send")

        monkeypatch.setattr(GatewayClient, "_once", dying_once)
        # control() carries no Idempotency-Key: the server may already have
        # acted, so the error surfaces after ONE attempt — no blind replay.
        with pytest.raises(GatewayUnreachable):
            client.control(job, "pause")
        assert calls["n"] == 1
        client.close()

    def test_submit_mid_request_failure_is_retried_via_idempotency(
        self, gateway, monkeypatch
    ):
        url, store = gateway
        client = GatewayClient(
            url,
            "k-acme",
            retry=fast_retry(attempts=3),
            breakers=BreakerRegistry(BreakerConfig(failures=100)),
        )
        real_once = GatewayClient._once
        calls = {"n": 0}

        def flaky_once(self, method, path, body, headers):
            calls["n"] += 1
            if calls["n"] == 1:
                # First attempt reaches the server (the job IS created),
                # but the response is lost on the way back.
                real_once(self, method, path, body, headers)
                self.close()
                raise _MidRequestFailed("response lost")
            return real_once(self, method, path, body, headers)

        monkeypatch.setattr(GatewayClient, "_once", flaky_once)
        document = client.submit(spec(), job="once-only")
        assert calls["n"] == 2
        # The replayed submit hit the idempotency cache: one job, no 409.
        assert document["job"] == "acme--once-only"
        assert len(store.jobs()) == 1
        client.close()

    def test_probe_success_closes_the_circuit(self, gateway, monkeypatch):
        url, _ = gateway
        registry = BreakerRegistry(BreakerConfig(failures=1, period=0.0))
        client = GatewayClient(
            url,
            "k-acme",
            retry=fast_retry(attempts=1),
            breakers=registry,
        )
        breaker = client._breaker
        breaker.record_failure()  # opened by some earlier disaster
        # period=0: the next allow() goes straight to half-open and the
        # live request is the probe; its success restores full duty.
        assert client.jobs()["kind"] == "job-list"
        assert breaker.state == CLOSED
        client.close()
