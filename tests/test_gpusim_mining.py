"""Tests for the SHA256d mining throughput model."""

import pytest

from repro.gpusim.device import DEVICES, PAPER_DEVICES
from repro.gpusim.mining import (
    mining_achieved_mhash,
    mining_mix,
    mining_source_mix,
    mining_theoretical_mhash,
)
from repro.gpusim.throughput import device_report
from repro.kernels.isa import SourceOp
from repro.kernels.trace import trace_sha256_compress
from repro.kernels.variants import HashAlgorithm


class TestMiningMix:
    def test_double_of_single_compress(self):
        single = trace_sha256_compress()
        double = mining_source_mix()
        for op in SourceOp:
            assert double[op] == 2 * single[op]

    def test_lowered_mix_has_plain_shifts(self):
        # SHA256's sigma functions use genuine (non-rotate) shifts too.
        mix = mining_mix("3.0")
        assert mix.shift_mad > 0
        assert mix.total > 2000  # two full compressions

    def test_no_prmt_for_sha256(self):
        # None of SHA256's rotation distances is 16.
        from repro.kernels.isa import InstructionClass

        assert mining_mix("3.0")[InstructionClass.PRMT] == 0


class TestMiningThroughput:
    def test_magnitudes_match_the_gpu_mining_era(self):
        # Era GPUs mined tens of Mhash/s; the model must land in that
        # decade, not Mkeys/s-of-MD5 territory.
        for name in ("8800", "550Ti", "660"):
            mhash = mining_theoretical_mhash(PAPER_DEVICES[name])
            assert 10 < mhash < 150, name

    def test_mining_much_slower_than_md5_cracking(self):
        # Two SHA256 compressions >> one 46-step MD5: > 20x per candidate.
        dev = PAPER_DEVICES["660"]
        md5 = device_report(dev, HashAlgorithm.MD5).achieved_mkeys
        mining = mining_achieved_mhash(dev)
        assert md5 / mining > 20

    def test_achieved_below_theoretical(self):
        for dev in PAPER_DEVICES.values():
            assert mining_achieved_mhash(dev) <= mining_theoretical_mhash(dev) * 1.0001

    def test_funnel_shift_is_a_big_deal_for_sha256(self):
        # SHA256 is rotation-heavy; CC 3.5's funnel shift pays off more
        # than core count alone explains.
        titan = DEVICES["TitanCC35"]
        kepler = DEVICES["660"]
        per_core_titan = mining_theoretical_mhash(titan) / titan.cores / titan.clock_mhz
        per_core_660 = mining_theoretical_mhash(kepler) / kepler.cores / kepler.clock_mhz
        assert per_core_titan > per_core_660 * 1.5

    def test_ilp_parameter_monotone(self):
        dev = PAPER_DEVICES["550Ti"]
        assert mining_achieved_mhash(dev, 0.5) >= mining_achieved_mhash(dev, 0.0)
