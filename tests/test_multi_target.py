"""Tests for the multi-target (auditing) shared-scan optimization."""

import hashlib

import numpy as np
import pytest

from repro.apps.audit import AuditEntry, AuditSession
from repro.apps.cracking import CrackTarget, crack_interval_multi
from repro.hashes import Endian, MD5ReversedTarget
from repro.hashes.padding import pad_message
from repro.hashes.reversal import md5_search_block, md5_search_block_multi
from repro.keyspace import ALPHA_LOWER, Charset, Interval
from repro.kernels.variants import HashAlgorithm

ABC = Charset("abc", name="abc")


def compiled(message: bytes, digest_of: bytes) -> MD5ReversedTarget:
    template = pad_message(message, Endian.LITTLE)[0]
    return MD5ReversedTarget.from_digest(hashlib.md5(digest_of).digest(), template)


class TestMD5SearchBlockMulti:
    def test_agrees_with_single_target_search(self):
        # Messages differing only in their first 4 bytes: the fixed words
        # (4+) are shared, exactly the multi-target precondition.
        messages = [b"one!-shared", b"two!-shared", b"xyz!-shared"]
        template = pad_message(messages[0], Endian.LITTLE)[0]
        targets = [
            MD5ReversedTarget.from_digest(hashlib.md5(m).digest(), template)
            for m in messages
        ]
        rng = np.random.default_rng(5)
        words = rng.integers(0, 2**32, size=2048, dtype=np.uint32)
        # Plant the true word-0 of each message (all share bytes 4+).
        for k, m in enumerate(messages):
            words[100 + k] = pad_message(m, Endian.LITTLE)[0][0]
        multi = md5_search_block_multi(words, targets)
        expected = []
        for t_idx, target in enumerate(targets):
            for lane in md5_search_block(words, target):
                expected.append((int(lane), t_idx))
        assert multi == sorted(expected)
        assert {(100, 0), (101, 1), (102, 2)} <= set(multi)

    def test_empty_targets(self):
        assert md5_search_block_multi(np.zeros(4, dtype=np.uint32), []) == []

    def test_mismatched_templates_rejected(self):
        a = compiled(b"same-len1", b"x")
        b = compiled(b"different", b"y")
        with pytest.raises(ValueError, match="identical fixed words"):
            md5_search_block_multi(np.zeros(4, dtype=np.uint32), [a, b])

    def test_no_matches(self):
        target = compiled(b"haystack", b"needle-elsewhere")
        words = np.arange(512, dtype=np.uint32)
        assert md5_search_block_multi(words, [target]) == []


class TestCrackIntervalMulti:
    def targets(self, passwords, **kw):
        return [
            CrackTarget.from_password(p, ABC, min_length=1, max_length=4, **kw)
            for p in passwords
        ]

    def test_finds_all_planted_passwords(self):
        passwords = ["ab", "cab", "bbbb"]
        targets = self.targets(passwords)
        space = targets[0].space_size
        triples = crack_interval_multi(targets, Interval(0, space), batch_size=97)
        found = {(key, t_idx) for _, key, t_idx in triples}
        assert found == {("ab", 0), ("cab", 1), ("bbbb", 2)}

    def test_agrees_with_individual_scans(self):
        from repro.apps.cracking import crack_interval

        targets = self.targets(["ba", "acca"])
        space = targets[0].space_size
        triples = crack_interval_multi(targets, Interval(0, space))
        for t_idx, target in enumerate(targets):
            single = crack_interval(target, Interval(0, space))
            assert [(i, k) for i, k, x in triples if x == t_idx] == single

    def test_shared_suffix_salt(self):
        targets = self.targets(["ab", "cc"], suffix=b"$salt")
        space = targets[0].space_size
        triples = crack_interval_multi(targets, Interval(0, space))
        assert {(k, x) for _, k, x in triples} == {("ab", 0), ("cc", 1)}

    def test_mixed_spaces_rejected(self):
        a = CrackTarget.from_password("ab", ABC, min_length=1, max_length=4)
        b = CrackTarget.from_password("ab", ABC, min_length=1, max_length=3)
        with pytest.raises(ValueError, match="identical search spaces"):
            crack_interval_multi([a, b], Interval(0, 10))

    def test_prefix_salt_rejected(self):
        targets = self.targets(["ab", "cc"], prefix=b"s:")
        with pytest.raises(ValueError, match="fast path"):
            crack_interval_multi(targets, Interval(0, 10))

    def test_sha1_rejected(self):
        targets = [
            CrackTarget.from_password("ab", ABC, algorithm=HashAlgorithm.SHA1, min_length=1, max_length=3)
        ] * 2
        with pytest.raises(ValueError, match="MD5"):
            crack_interval_multi(targets, Interval(0, 10))

    def test_empty(self):
        assert crack_interval_multi([], Interval(0, 10)) == []

    def test_out_of_range(self):
        targets = self.targets(["ab"])
        with pytest.raises(IndexError):
            crack_interval_multi(targets, Interval(0, targets[0].space_size + 1))


class TestAuditRunShared:
    def test_shared_equals_individual(self):
        entries = [
            AuditEntry("u1", hashlib.md5(b"ab").digest()),
            AuditEntry("u2", hashlib.md5(b"cba").digest()),
            AuditEntry("u3", hashlib.md5(b"far-too-long").digest()),
        ]
        session = AuditSession(entries, ABC, max_length=3)
        shared = session.run_shared()
        individual = session.run()
        assert {(f.account, f.password) for f in shared.findings} == {
            (f.account, f.password) for f in individual.findings
        }
        # The shared scan pays the candidate stream once, not per account.
        assert shared.candidates_tested < individual.candidates_tested

    def test_salted_entries_fall_back_to_individual(self):
        entries = [
            AuditEntry("plain", hashlib.md5(b"ab").digest()),
            AuditEntry("salted", hashlib.md5(b"cc-s").digest(), suffix=b"-s"),
        ]
        report = AuditSession(entries, ABC, max_length=2).run_shared()
        assert report.password_of("plain") == "ab"
        assert report.password_of("salted") == "cc"

    def test_budget_respected(self):
        entries = [AuditEntry("u", hashlib.md5(b"ccc").digest())]
        report = AuditSession(entries, ABC, max_length=3).run_shared(budget=5)
        assert report.cracked == 0
        assert report.candidates_tested == 5

    def test_sha1_session_rejected(self):
        entries = [AuditEntry("u", hashlib.sha1(b"ab").digest())]
        session = AuditSession(entries, ABC, algorithm=HashAlgorithm.SHA1)
        with pytest.raises(ValueError, match="MD5"):
            session.run_shared()
