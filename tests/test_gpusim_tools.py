"""Tests for the BarsWF / Cryptohaze baseline models vs Table VIII."""

import pytest

from repro.gpusim import PAPER_DEVICES, TOOL_PROFILES, device_report, tool_throughput
from repro.gpusim.tools import BARSWF, CRYPTOHAZE
from repro.kernels.variants import HashAlgorithm

#: Table VIII tool rows, verbatim (Mkeys/s).
PAPER_BARSWF_MD5 = {"8600M": 71, "8800": 490, "540M": 205, "550Ti": 560, "660": 1340}
PAPER_CRYPTOHAZE_MD5 = {"8600M": 49.4, "8800": 316, "540M": 146, "550Ti": 410, "660": 1280}
PAPER_CRYPTOHAZE_SHA1 = {"8600M": 20.8, "8800": 132, "540M": 68, "550Ti": 185, "660": 377}


class TestProfiles:
    def test_barswf_is_md5_only(self):
        assert BARSWF.supports(HashAlgorithm.MD5)
        assert not BARSWF.supports(HashAlgorithm.SHA1)
        assert tool_throughput(BARSWF, PAPER_DEVICES["660"], HashAlgorithm.SHA1) is None

    def test_cryptohaze_supports_both(self):
        assert CRYPTOHAZE.supports(HashAlgorithm.MD5)
        assert CRYPTOHAZE.supports(HashAlgorithm.SHA1)

    def test_profiles_registry(self):
        assert set(TOOL_PROFILES) == {"BarsWF", "Cryptohaze"}

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="no calibration"):
            BARSWF.utilization_for("9.x")


class TestTableVIIIToolRows:
    @pytest.mark.parametrize("device_name", list(PAPER_BARSWF_MD5))
    def test_barswf_md5_within_band(self, device_name):
        got = tool_throughput(BARSWF, PAPER_DEVICES[device_name], HashAlgorithm.MD5)
        assert got == pytest.approx(PAPER_BARSWF_MD5[device_name], rel=0.15)

    @pytest.mark.parametrize("device_name", list(PAPER_CRYPTOHAZE_MD5))
    def test_cryptohaze_md5_within_band(self, device_name):
        got = tool_throughput(CRYPTOHAZE, PAPER_DEVICES[device_name], HashAlgorithm.MD5)
        assert got == pytest.approx(PAPER_CRYPTOHAZE_MD5[device_name], rel=0.15)

    @pytest.mark.parametrize("device_name", list(PAPER_CRYPTOHAZE_SHA1))
    def test_cryptohaze_sha1_within_band(self, device_name):
        got = tool_throughput(CRYPTOHAZE, PAPER_DEVICES[device_name], HashAlgorithm.SHA1)
        assert got == pytest.approx(PAPER_CRYPTOHAZE_SHA1[device_name], rel=0.25)


class TestOrderings:
    """The qualitative claims of Table VIII: who wins where."""

    @pytest.mark.parametrize("device_name", list(PAPER_BARSWF_MD5))
    def test_ours_beats_or_matches_barswf_md5(self, device_name):
        dev = PAPER_DEVICES[device_name]
        ours = device_report(dev, HashAlgorithm.MD5).achieved_mkeys
        bars = tool_throughput(BARSWF, dev, HashAlgorithm.MD5)
        assert ours >= bars * 0.99

    @pytest.mark.parametrize("device_name", list(PAPER_CRYPTOHAZE_MD5))
    def test_barswf_beats_cryptohaze_md5(self, device_name):
        dev = PAPER_DEVICES[device_name]
        bars = tool_throughput(BARSWF, dev, HashAlgorithm.MD5)
        cry = tool_throughput(CRYPTOHAZE, dev, HashAlgorithm.MD5)
        assert bars > cry

    @pytest.mark.parametrize("device_name", list(PAPER_CRYPTOHAZE_SHA1))
    def test_ours_beats_cryptohaze_sha1(self, device_name):
        dev = PAPER_DEVICES[device_name]
        ours = device_report(dev, HashAlgorithm.SHA1).achieved_mkeys
        cry = tool_throughput(CRYPTOHAZE, dev, HashAlgorithm.SHA1)
        assert ours > cry

    def test_kepler_gap_largest_for_barswf(self):
        # The paper highlights Kepler: ours 99.46% vs BarsWF 72.39% of peak.
        dev = PAPER_DEVICES["660"]
        ours = device_report(dev, HashAlgorithm.MD5)
        bars = tool_throughput(BARSWF, dev, HashAlgorithm.MD5)
        assert bars / ours.theoretical_mkeys < 0.80
        assert ours.efficiency > 0.95
