"""Unit tests for repro.keyspace.charset."""

import numpy as np
import pytest

from repro.keyspace import (
    ALNUM_MIXED,
    ALPHA_LOWER,
    ALPHA_MIXED,
    ASCII_PRINTABLE,
    Charset,
    DIGITS,
    HEX_LOWER,
)


class TestCharsetConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one symbol"):
            Charset("")

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            Charset("abca")

    def test_rejects_multibyte(self):
        with pytest.raises(ValueError, match="single-byte"):
            Charset("ab☃")

    def test_len_matches_symbols(self):
        assert len(Charset("abc")) == 3
        assert len(ALNUM_MIXED) == 62
        assert len(ALPHA_MIXED) == 52
        assert len(ASCII_PRINTABLE) == 95

    def test_name_not_part_of_equality(self):
        assert Charset("abc", name="x") == Charset("abc", name="y")


class TestCharsetProtocol:
    def test_contains(self):
        assert "a" in ALPHA_LOWER
        assert "A" not in ALPHA_LOWER

    def test_getitem_is_digit_order(self):
        assert DIGITS[0] == "0"
        assert DIGITS[9] == "9"
        assert ALNUM_MIXED[0] == "a"

    def test_iter_order(self):
        assert "".join(HEX_LOWER) == "0123456789abcdef"

    def test_digit_of_roundtrip(self):
        for i, ch in enumerate(ALNUM_MIXED):
            assert ALNUM_MIXED.digit_of(ch) == i

    def test_digit_of_foreign_raises(self):
        with pytest.raises(ValueError, match="not in charset"):
            ALPHA_LOWER.digit_of("!")

    def test_digits_of_and_key_of_invert(self):
        key = "hello42"
        cs = ALNUM_MIXED
        assert cs.key_of(cs.digits_of(key)) == key

    def test_is_valid_key(self):
        assert ALPHA_LOWER.is_valid_key("abc")
        assert not ALPHA_LOWER.is_valid_key("aBc")
        assert ALPHA_LOWER.is_valid_key("")  # vacuous


class TestByteTables:
    def test_byte_table_matches_symbols(self):
        table = ALNUM_MIXED.byte_table
        assert table.dtype == np.uint8
        assert table.tobytes().decode("latin-1") == ALNUM_MIXED.symbols

    def test_inverse_byte_table(self):
        cs = HEX_LOWER
        inv = cs.inverse_byte_table
        for i, ch in enumerate(cs):
            assert inv[ord(ch)] == i
        assert inv[ord("z")] == -1

    def test_tables_compose_to_identity(self):
        cs = ASCII_PRINTABLE
        digits = np.arange(len(cs))
        assert np.array_equal(cs.inverse_byte_table[cs.byte_table[digits]], digits)
