"""Tests for the Bitcoin-style mining application."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.mining import (
    HEADER_BYTES,
    MiningJob,
    leading_zero_bits,
    mine_interval,
)
from repro.keyspace import Interval


def make_job(difficulty=8, seed=0):
    rng = np.random.default_rng(seed)
    header = rng.integers(0, 256, size=HEADER_BYTES, dtype=np.uint8).tobytes()
    return MiningJob(header=header, difficulty_bits=difficulty)


class TestLeadingZeroBits:
    def test_all_zero(self):
        assert leading_zero_bits(b"\x00" * 4) == 32

    def test_no_zero(self):
        assert leading_zero_bits(b"\xff\x00") == 0

    def test_partial_byte(self):
        assert leading_zero_bits(b"\x0f\xff") == 4
        assert leading_zero_bits(b"\x01") == 7
        assert leading_zero_bits(b"\x00\x80") == 8

    def test_empty(self):
        assert leading_zero_bits(b"") == 0


class TestMiningJob:
    def test_header_length_validated(self):
        with pytest.raises(ValueError, match="80 bytes"):
            MiningJob(b"short", 8)

    def test_difficulty_validated(self):
        with pytest.raises(ValueError):
            MiningJob(b"\x00" * 80, -1)
        with pytest.raises(ValueError):
            MiningJob(b"\x00" * 80, 257)

    def test_with_nonce_splices_little_endian(self):
        job = make_job()
        header = job.with_nonce(0x01020304)
        assert header[76:80] == bytes([0x04, 0x03, 0x02, 0x01])
        assert header[:76] == job.header[:76]

    def test_nonce_range_validated(self):
        job = make_job()
        with pytest.raises(ValueError):
            job.with_nonce(2**32)

    def test_scalar_test_matches_hashlib(self):
        job = make_job(difficulty=0)
        header = job.with_nonce(1234)
        expected = hashlib.sha256(hashlib.sha256(header).digest()).digest()
        assert job.test(1234) == (leading_zero_bits(expected) >= 0)

    def test_space_is_32_bit(self):
        assert make_job().space == Interval(0, 2**32)


class TestMineInterval:
    def test_finds_known_nonce(self):
        # Find a real nonce by scalar scan first, then check the vectorized
        # miner reports exactly the same winners over that range.
        job = make_job(difficulty=10, seed=42)
        winners_scalar = [n for n in range(6000) if job.test(n)]
        assert winners_scalar, "seed must yield at least one winner in range"
        winners_vec = mine_interval(job, Interval(0, 6000), batch_size=512)
        assert winners_vec == winners_scalar

    def test_zero_difficulty_accepts_everything(self):
        job = make_job(difficulty=0)
        assert mine_interval(job, Interval(10, 20)) == list(range(10, 20))

    def test_interval_bounds_validated(self):
        job = make_job()
        with pytest.raises(ValueError):
            mine_interval(job, Interval(0, 2**32 + 1))
        with pytest.raises(ValueError):
            mine_interval(job, Interval(0, 10), batch_size=0)

    def test_empty_interval(self):
        assert mine_interval(make_job(), Interval(5, 5)) == []

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), start=st.integers(0, 2**20))
    def test_property_vectorized_equals_scalar(self, seed, start):
        job = make_job(difficulty=6, seed=seed)
        interval = Interval(start, start + 700)
        expected = [n for n in interval if job.test(n)]
        assert mine_interval(job, interval, batch_size=128) == expected

    def test_high_difficulty_finds_nothing_fast(self):
        job = make_job(difficulty=200)
        assert mine_interval(job, Interval(0, 3000)) == []
