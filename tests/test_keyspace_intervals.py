"""Tests for interval tiling — the dispatch payload of Section III."""

import pytest
from hypothesis import given, strategies as st

from repro.keyspace import Interval, partition_evenly, partition_weighted, split_interval
from repro.keyspace.intervals import is_exact_partition, merge_intervals


class TestInterval:
    def test_basic_protocol(self):
        iv = Interval(3, 10)
        assert len(iv) == 7
        assert iv.size == 7
        assert bool(iv)
        assert 3 in iv and 9 in iv and 10 not in iv
        assert list(iv) == list(range(3, 10))

    def test_empty(self):
        iv = Interval(5, 5)
        assert not iv
        assert len(iv) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            Interval(-1, 3)
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_take(self):
        head, rest = Interval(0, 10).take(4)
        assert (head, rest) == (Interval(0, 4), Interval(4, 10))
        head, rest = Interval(0, 10).take(100)
        assert (head, rest) == (Interval(0, 10), Interval(10, 10))
        with pytest.raises(ValueError):
            Interval(0, 10).take(-1)

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 6))
        assert not Interval(0, 5).overlaps(Interval(5, 6))

    def test_supports_huge_ints(self):
        iv = Interval(0, 62**20)
        assert iv.size == 62**20


class TestSplitInterval:
    def test_exact_chunks(self):
        parts = split_interval(Interval(0, 9), 3)
        assert parts == [Interval(0, 3), Interval(3, 6), Interval(6, 9)]

    def test_ragged_tail(self):
        parts = split_interval(Interval(2, 9), 3)
        assert parts == [Interval(2, 5), Interval(5, 8), Interval(8, 9)]

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            split_interval(Interval(0, 5), 0)

    @given(start=st.integers(0, 50), size=st.integers(0, 200), chunk=st.integers(1, 40))
    def test_split_is_exact_partition(self, start, size, chunk):
        whole = Interval(start, start + size)
        assert is_exact_partition(whole, split_interval(whole, chunk))


class TestPartitionEvenly:
    @given(start=st.integers(0, 100), size=st.integers(0, 500), parts=st.integers(1, 17))
    def test_tiles_exactly(self, start, size, parts):
        whole = Interval(start, start + size)
        pieces = partition_evenly(whole, parts)
        assert len(pieces) == parts
        assert is_exact_partition(whole, pieces)
        sizes = [p.size for p in pieces]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_evenly(Interval(0, 5), 0)


class TestPartitionWeighted:
    def test_proportional_to_throughput(self):
        # The paper's rule: N_j = N_max * X_j / X_max.
        whole = Interval(0, 1000)
        pieces = partition_weighted(whole, [1851, 654, 71])  # GTX660, 550Ti, 8600M
        sizes = [p.size for p in pieces]
        assert sum(sizes) == 1000
        assert sizes[0] > sizes[1] > sizes[2]
        assert sizes[0] == pytest.approx(1000 * 1851 / 2576, abs=1)

    @given(
        start=st.integers(0, 10),
        size=st.integers(0, 10_000),
        weights=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=8),
    )
    def test_tiles_exactly(self, start, size, weights):
        whole = Interval(start, start + size)
        assert is_exact_partition(whole, partition_weighted(whole, weights))

    def test_zero_weights_degenerate(self):
        pieces = partition_weighted(Interval(0, 10), [0.0, 0.0])
        assert [p.size for p in pieces] == [10, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            partition_weighted(Interval(0, 5), [])
        with pytest.raises(ValueError):
            partition_weighted(Interval(0, 5), [1.0, -1.0])

    @given(size=st.integers(1, 10_000))
    def test_rounding_error_bounded_by_one(self, size):
        whole = Interval(0, size)
        weights = [5.0, 3.0, 2.0]
        pieces = partition_weighted(whole, weights)
        for piece, w in zip(pieces, weights):
            assert abs(piece.size - size * w / 10.0) <= 1.0


class TestMergeIntervals:
    def test_merges_adjacent_and_overlapping(self):
        merged = merge_intervals([Interval(0, 3), Interval(3, 5), Interval(4, 9), Interval(12, 13)])
        assert merged == [Interval(0, 9), Interval(12, 13)]

    def test_drops_empty(self):
        assert merge_intervals([Interval(2, 2), Interval(5, 5)]) == []

    def test_exact_partition_detects_gap_and_overlap(self):
        whole = Interval(0, 10)
        assert is_exact_partition(whole, [Interval(0, 4), Interval(4, 10)])
        assert not is_exact_partition(whole, [Interval(0, 4), Interval(5, 10)])
        assert not is_exact_partition(whole, [Interval(0, 6), Interval(4, 10)])
        assert is_exact_partition(Interval(3, 3), [])
