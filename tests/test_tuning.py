"""The autotuner's contract: persist winners, never poison a run.

Three properties pin the tuning layer down:

* **Round-trip** — a recorded best survives save/load bit-for-bit and
  validates against ``repro-tuning/v1``.
* **Invalidation** — an entry measured for a different worker count or
  CPU count is stale by definition and must be ignored, both by the
  store and by :func:`repro.core.backend.resolve_backend`.
* **Equivalence** — a tuned run and an untuned run of the same search
  find identical keys and test identical counts: tuning moves work
  around, it never changes what the work is.
"""

import json
import os

import pytest

import repro.tuning as tuning
from repro.apps.cracking import CrackTarget, crack_interval
from repro.core.backend import resolve_backend
from repro.keyspace import Charset, Interval, split_interval
from repro.tuning import (
    TUNING_FILE_ENV,
    TUNING_SCHEMA,
    TuningEntry,
    TuningStore,
    default_tuning_path,
    lookup,
    make_entry,
    validate_tuning,
)

ABC = Charset("abc", name="abc")
HOST_CPUS = os.cpu_count() or 1


def entry_for(backend="thread", workers=2, cpus=None, kps=1e6, **kw):
    kw.setdefault("chunk_size", 4096)
    kw.setdefault("gather_batch", 4)
    kw.setdefault("batch_size", 1024)
    return make_entry(
        backend, workers, keys_per_second=kps, cpus=cpus, **kw
    )


@pytest.fixture
def tuning_file(tmp_path, monkeypatch):
    """Point the default store at a throwaway path, cache cleared."""
    path = tmp_path / "tuning.json"
    monkeypatch.setenv(TUNING_FILE_ENV, str(path))
    tuning._CACHE.clear()
    yield path
    tuning._CACHE.clear()


class TestRoundTrip:
    def test_save_load_bit_for_bit(self, tuning_file):
        store = TuningStore(tuning_file)
        recorded = entry_for("process", workers=3, kps=5.5e6)
        assert store.record(recorded)
        store.save()

        reloaded = TuningStore(tuning_file)
        assert reloaded.entries() == [recorded]
        assert validate_tuning(json.loads(tuning_file.read_text())) == []

    def test_document_schema(self, tuning_file):
        store = TuningStore(tuning_file)
        store.record(entry_for())
        document = store.to_document()
        assert document["schema"] == TUNING_SCHEMA
        assert len(document["entries"]) == 1

    def test_record_keeps_faster_on_same_host(self, tuning_file):
        store = TuningStore(tuning_file)
        assert store.record(entry_for(kps=2e6, chunk_size=8192))
        # A slower remeasurement on the same shape must not clobber.
        assert not store.record(entry_for(kps=1e6, chunk_size=512))
        assert store.best_for("thread", 2, cpus=HOST_CPUS).chunk_size == 8192
        # A faster one replaces.
        assert store.record(entry_for(kps=3e6, chunk_size=16384))
        assert store.best_for("thread", 2, cpus=HOST_CPUS).chunk_size == 16384

    def test_record_replaces_other_host_shape(self, tuning_file):
        store = TuningStore(tuning_file)
        store.record(entry_for(cpus=HOST_CPUS + 4, kps=9e9))
        # Remeasured here: wins regardless of the foreign entry's speed.
        assert store.record(entry_for(cpus=HOST_CPUS, kps=1e6))
        assert store.best_for("thread", 2, cpus=HOST_CPUS).cpus == HOST_CPUS


class TestInvalidation:
    def test_stale_on_worker_count_change(self, tuning_file):
        store = TuningStore(tuning_file)
        store.record(entry_for(workers=2, cpus=HOST_CPUS))
        store.save()
        assert lookup("thread", 2) is not None
        # The sweep measured 2 workers; a 3-worker pool must not reuse it.
        assert lookup("thread", 3) is None

    def test_stale_on_cpu_count_change(self, tuning_file):
        store = TuningStore(tuning_file)
        store.record(entry_for(cpus=HOST_CPUS + 2))
        store.save()
        tuning._CACHE.clear()
        # Entry exists for (thread, 2) but was measured on another host.
        assert lookup("thread", 2) is None
        assert store.best_for("thread", 2, cpus=HOST_CPUS + 2) is not None

    def test_matches_host_guard(self):
        entry = entry_for(workers=2, cpus=4)
        assert entry.matches_host(2, cpus=4)
        assert not entry.matches_host(3, cpus=4)
        assert not entry.matches_host(2, cpus=8)

    def test_resolve_backend_attaches_valid_tuning(self, tuning_file):
        store = TuningStore(tuning_file)
        store.record(entry_for("thread", workers=2, cpus=HOST_CPUS))
        store.save()
        with resolve_backend("thread", workers=2) as backend:
            assert backend.tuned is not None
            assert backend.tuned.chunk_size == 4096

    def test_resolve_backend_ignores_stale_tuning(self, tuning_file):
        store = TuningStore(tuning_file)
        store.record(entry_for("thread", workers=3, cpus=HOST_CPUS))
        store.save()
        with resolve_backend("thread", workers=2) as backend:
            assert backend.tuned is None

    def test_resolve_backend_opt_out(self, tuning_file):
        store = TuningStore(tuning_file)
        store.record(entry_for("thread", workers=2, cpus=HOST_CPUS))
        store.save()
        with resolve_backend("thread", workers=2, tuning=False) as backend:
            assert backend.tuned is None


class TestLookupSafety:
    def test_missing_file(self, tuning_file):
        assert not tuning_file.exists()
        assert lookup("thread", 2) is None

    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all",
            '{"schema": "wrong/v9", "entries": []}',
            '{"schema": "repro-tuning/v1", "entries": [{"backend": ""}]}',
            '{"schema": "repro-tuning/v1"}',
        ],
    )
    def test_malformed_file_means_no_tuning(self, tuning_file, payload):
        tuning_file.write_text(payload)
        assert lookup("thread", 2) is None

    def test_cache_follows_mtime(self, tuning_file):
        store = TuningStore(tuning_file)
        store.record(entry_for(chunk_size=2048))
        store.save()
        assert lookup("thread", 2).chunk_size == 2048
        # Rewrite with a different winner and a newer mtime: picked up.
        store2 = TuningStore(tuning_file)
        store2.record(entry_for(kps=9e6, chunk_size=32768))
        store2.save()
        os.utime(tuning_file, (9_999_999_999, 9_999_999_999))
        assert lookup("thread", 2).chunk_size == 32768

    def test_default_path_env_override(self, tuning_file):
        assert default_tuning_path() == tuning_file

    def test_entry_rejects_nonpositive_knobs(self):
        with pytest.raises(ValueError):
            TuningEntry("thread", 2, 1, 0, 1, 1, 1.0, 1)
        with pytest.raises(ValueError):
            TuningEntry("thread", 0, 1, 64, 1, 1, 1.0, 1)


class TestTunedUntunedEquivalence:
    def _run(self, tuned_chunk):
        target = CrackTarget.from_password("cba", ABC, min_length=1, max_length=4)
        interval = Interval(0, target.space_size)
        with resolve_backend("thread", workers=2, tuning=False) as backend:
            if tuned_chunk is not None:
                backend.tuned = entry_for(
                    "thread", workers=2, cpus=HOST_CPUS,
                    chunk_size=tuned_chunk, gather_batch=2,
                )
            outcome = backend.run(
                target, split_interval(interval, 13), batch_size=32
            )
        return outcome

    def test_identical_keys_and_counts(self):
        untuned = self._run(None)
        tuned = self._run(7)
        target = CrackTarget.from_password("cba", ABC, min_length=1, max_length=4)
        reference = crack_interval(target, Interval(0, target.space_size))
        assert untuned.found == tuned.found == reference
        assert untuned.tested == tuned.tested == target.space_size

    def test_cluster_chunking_follows_tuning(self, tuning_file):
        # End to end: LocalCluster with a tuned chunk size still finds
        # the key, covering the sizing consult in cluster/local.py.
        store = TuningStore(tuning_file)
        store.record(
            entry_for("thread", workers=2, cpus=HOST_CPUS, chunk_size=50)
        )
        store.save()
        target = CrackTarget.from_password("bb", ABC, min_length=1, max_length=3)
        with LocalClusterFactory() as cluster:
            report = cluster.crack(target)
        assert [key for _, key in report.found] == ["bb"]
        assert report.tested == target.space_size


class LocalClusterFactory:
    """Context manager building a tuned 2-worker thread LocalCluster."""

    def __enter__(self):
        from repro.cluster.local import LocalCluster

        self.cluster = LocalCluster(backend="thread", workers=2)
        return self.cluster

    def __exit__(self, *exc):
        self.cluster.close()
        return False
