"""Cross-module property tests: invariants spanning several subsystems."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cracking import CrackTarget, crack_interval
from repro.hashes.md5 import MD5_INIT, md5_compress
from repro.hashes.sha1 import SHA1_INIT, sha1_compress
from repro.hashes.md4 import MD4_INIT, md4_compress
from repro.hashes.sha256 import SHA256_INIT, sha256_compress
from repro.hashes.vec_md4 import md4_compress_batch
from repro.hashes.vec_md5 import md5_compress_batch
from repro.hashes.vec_sha1 import sha1_compress_batch
from repro.hashes.vec_sha256 import sha256_compress_batch
from repro.keyspace import Charset, Interval, partition_weighted
from repro.keyspace.intervals import split_interval

ABC = Charset("abc", name="abc")


class TestDispatchConservation:
    """Searching any partition of an interval equals searching the whole —
    the correctness core of the scatter/gather pattern."""

    @settings(max_examples=10, deadline=None)
    @given(
        chunk=st.integers(1, 97),
        data=st.data(),
    )
    def test_split_interval_conserves_matches(self, chunk, data):
        password = data.draw(st.text(alphabet="abc", min_size=1, max_size=3))
        target = CrackTarget.from_password(password, ABC, min_length=1, max_length=3)
        whole = Interval(0, target.space_size)
        one_shot = crack_interval(target, whole)
        pieces = []
        for part in split_interval(whole, chunk):
            pieces.extend(crack_interval(target, part))
        assert sorted(pieces) == one_shot

    @settings(max_examples=10, deadline=None)
    @given(weights=st.lists(st.floats(0.1, 10.0), min_size=2, max_size=5))
    def test_weighted_partition_conserves_matches(self, weights):
        target = CrackTarget.from_password("cab", ABC, min_length=1, max_length=4)
        whole = Interval(0, target.space_size)
        one_shot = crack_interval(target, whole)
        pieces = []
        for part in partition_weighted(whole, weights):
            pieces.extend(crack_interval(target, part))
        assert sorted(pieces) == one_shot


class TestRawBlockEquivalence:
    """The vectorized compress functions equal the scalar references on
    arbitrary (not just padded) blocks — the compress layer itself."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31), batch=st.integers(1, 16))
    def test_all_four_compressors(self, seed, batch):
        rng = np.random.default_rng(seed)
        blocks = rng.integers(0, 2**32, size=(batch, 16), dtype=np.uint32)
        pairs = [
            (md5_compress, md5_compress_batch, MD5_INIT),
            (sha1_compress, sha1_compress_batch, SHA1_INIT),
            (md4_compress, md4_compress_batch, MD4_INIT),
            (sha256_compress, sha256_compress_batch, SHA256_INIT),
        ]
        for scalar, batched, init in pairs:
            out = np.stack(batched(blocks), axis=1)
            for lane in range(batch):
                expected = scalar(init, [int(w) for w in blocks[lane]])
                assert tuple(int(x) for x in out[lane]) == expected

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_chained_state_equals_two_block_scalar(self, seed):
        rng = np.random.default_rng(seed)
        first = [int(w) for w in rng.integers(0, 2**32, size=16)]
        second_blocks = rng.integers(0, 2**32, size=(4, 16), dtype=np.uint32)
        for scalar, batched, init in [
            (md5_compress, md5_compress_batch, MD5_INIT),
            (sha1_compress, sha1_compress_batch, SHA1_INIT),
            (sha256_compress, sha256_compress_batch, SHA256_INIT),
            (md4_compress, md4_compress_batch, MD4_INIT),
        ]:
            mid = scalar(init, first)
            state = tuple(
                np.full(4, np.uint32(x), dtype=np.uint32) for x in mid
            )
            out = np.stack(batched(second_blocks, state=state), axis=1)
            for lane in range(4):
                expected = scalar(mid, [int(w) for w in second_blocks[lane]])
                assert tuple(int(x) for x in out[lane]) == expected


class TestSmallAccessors:
    """Direct coverage for thin accessors flagged by the API audit."""

    def test_simulator_processed_counter(self):
        from repro.cluster import Simulator

        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed == 5
        assert sim.pending == 0

    def test_cluster_node_is_leaf(self):
        from repro.cluster import ClusterNode, GPUWorker

        leaf = ClusterNode("l", devices=[GPUWorker("g", 1e6)])
        parent = ClusterNode("p", devices=[GPUWorker("h", 1e6)], children=[leaf])
        assert leaf.is_leaf
        assert not parent.is_leaf

    def test_session_estimate_time_scales(self):
        from repro.core.results import SessionEstimate

        est = SessionEstimate(
            space_size=10**12,
            network_mkeys=1000.0,
            seconds_full_scan=86_400.0 * 365.25,
            seconds_expected=86_400.0 * 365.25 / 2,
        )
        assert est.days_full_scan == pytest.approx(365.25)
        assert est.years_full_scan == pytest.approx(1.0)
        assert est.hours_full_scan == pytest.approx(365.25 * 24)

    def test_dictionary_iter_interval_clamps(self):
        from repro.apps.dictionary import DictionaryAttack

        attack = DictionaryAttack(("a", "b"))
        assert list(attack.iter_interval(Interval(1, 99))) == [(1, "b")]

    def test_arch_port_peaks(self):
        from repro.gpusim.arch import ARCHITECTURES

        arch = ARCHITECTURES["2.1"]
        assert arch.add_lop_peak() == 48
        assert arch.shift_mad_peak() == 16
