"""Cross-module integration tests: the whole system, end to end."""

import hashlib

import pytest

from repro import (
    ALNUM_MIXED,
    Charset,
    CrackTarget,
    CrackingSession,
    HashAlgorithm,
    Interval,
    build_paper_network,
)
from repro.cluster import FaultPlan, run_with_faults, simulate_run
from repro.core.costs import CostModel, DispatchCosts, dispatch_bounds
from repro.gpusim.launch import LaunchModel, efficiency_at, min_batch_for_efficiency

ABC = Charset("abc", name="abc")


class TestBackendAgreement:
    """Every backend must report exactly the same cracks."""

    @pytest.mark.parametrize("algorithm", list(HashAlgorithm))
    def test_sequential_local_and_naive_agree(self, algorithm):
        target = CrackTarget.from_password(
            "bac", ABC, algorithm=algorithm, min_length=1, max_length=4
        )
        session = CrackingSession(target)
        seq = session.run(backend="sequential")
        loc = session.run(backend="serial", workers=1, batch_size=53)
        from repro.apps.cracking import CrackEngine

        naive = CrackEngine(target, batch_size=53, force_naive=True).search_all()
        assert seq.found == loc.found == naive
        assert seq.tested == loc.tested == target.space_size


class TestTuningFeedsDispatch:
    """The launch model's n_j drives the cluster's round sizing."""

    def test_min_batch_reaches_target_on_network(self):
        net = build_paper_network(HashAlgorithm.MD5)
        for device in net.subtree_devices():
            n = min_batch_for_efficiency(device.launch, 0.95)
            assert efficiency_at(device.launch, n) >= 0.95
        result = simulate_run(net, 5 * 10**9)
        assert result.dispatch_efficiency > 0.95


class TestCostModelMatchesSimulation:
    """The K_D bounds of Section III must bracket the DES measurement."""

    def test_bounds_bracket_simulated_round(self):
        from repro.cluster import ClusterNode, GPUWorker, LinkSpec
        from repro.cluster.node import GATHER_BYTES, SCATTER_BYTES

        link = LinkSpec(latency=1e-3, bandwidth=1e7)
        children = [
            ClusterNode(f"n{i}", devices=[GPUWorker(f"g{i}", rate)], uplink=link)
            for i, rate in enumerate([4e6, 2e6, 1e6])
        ]
        root = ClusterNode("root", devices=[GPUWorker("g-root", 1e6)], children=children)
        total = 8_000_000
        result = simulate_run(root, total, round_size=total, merge_cost=1e-4)

        shares = [w.throughput / root.aggregate_throughput * total for w in root.subtree_devices()]
        searches = [
            dev.compute_time(int(share))
            for dev, share in zip(root.subtree_devices(), shares)
        ]
        scatter = [link.transfer_time(SCATTER_BYTES)] * 4
        gather = [link.transfer_time(GATHER_BYTES)] * 4
        lower, upper = dispatch_bounds(
            DispatchCosts(scatter=scatter, search=searches, gather=gather, merge=1e-4)
        )
        # The DES serializes sends but overlaps searches: inside the bounds.
        assert lower * 0.99 <= result.elapsed <= upper * 1.01


class TestSessionOnPaperNetworkFindsPlantedKey:
    def test_simulated_cluster_locates_key_device_consistently(self):
        target = CrackTarget.from_password("Zz9", ALNUM_MIXED, min_length=1, max_length=3)
        session = CrackingSession(target)
        run1 = session.simulate_on(build_paper_network(), planted_password="Zz9", round_size=10**4)
        run2 = session.simulate_on(build_paper_network(), planted_password="Zz9", round_size=10**4)
        assert run1.found == run2.found  # deterministic dispatch
        (device, index), = run1.found
        # The device that scanned it really owns that id in its intervals.
        assert any(index in iv for iv in run1.device_stats[device].intervals)

    def test_local_backend_agrees_with_planted_id(self):
        target = CrackTarget.from_password("Zz9", ALNUM_MIXED, min_length=1, max_length=3)
        result = CrackingSession(target).run(backend="serial", workers=1)
        assert result.passwords == ["Zz9"]


class TestFaultToleranceEndToEnd:
    def test_key_is_still_found_when_its_device_dies(self):
        # Kill node B (the strongest) after round 1; the requeued intervals
        # still cover the planted key's id exactly once.
        net = build_paper_network(HashAlgorithm.MD5)
        plan = FaultPlan(failures={"B": 1})
        report = run_with_faults(net, 10**9, round_size=10**8, plan=plan)
        assert report.covered_exactly
        key_id = 123_456_789
        owners = [
            name
            for name, intervals in report.completed.items()
            if any(key_id in iv for iv in intervals)
        ]
        assert len(owners) == 1  # exactly one device tested the key


class TestEfficiencyStoryHangsTogether:
    """Section III's cost story, from per-candidate costs up to the network."""

    def test_from_k_next_to_network_efficiency(self):
        from repro.core.costs import process_efficiency

        model = CostModel(k_f=1e-6, k_next=1e-8, k_c=5e-8)
        # Per-thread: long runs push efficiency to k_c / (k_c + k_next).
        assert process_efficiency(10**6, model) == pytest.approx(
            5e-8 / 6e-8, rel=1e-3
        )
        # Per-device: the launch model says how many candidates one
        # dispatch must carry.
        launch = LaunchModel(peak_rate=1841e6)
        n = min_batch_for_efficiency(launch, 0.99)
        assert efficiency_at(launch, n) >= 0.99
        # Per-network: with rounds at least that large, dispatch efficiency
        # stays in the same regime.
        net = build_paper_network(HashAlgorithm.MD5)
        result = simulate_run(net, 20 * n, round_size=4 * n)
        assert result.dispatch_efficiency > 0.97
