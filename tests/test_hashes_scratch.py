"""Allocation-free compress kernels: correctness and allocation bounds.

The ``*_compress_batch_into`` variants must be bit-identical to ``hashlib``
on arbitrary multi-block messages (chained through ``state=``), and repeated
calls must not allocate — they work entirely inside a preallocated
:class:`CompressScratch`.
"""

import hashlib
import random
import tracemalloc

import numpy as np
import pytest

from repro.apps.cracking import CrackEngine, CrackTarget
from repro.hashes.common import CompressScratch, np_rotl32, np_rotl32_into
from repro.hashes.padding import Endian, pad_message
from repro.hashes.vec_md4 import MD4Scratch, md4_batch, md4_compress_batch_into
from repro.hashes.vec_md5 import MD5Scratch, md5_compress_batch_into
from repro.hashes.vec_sha1 import SHA1Scratch, sha1_compress_batch_into
from repro.hashes.vec_sha256 import SHA256Scratch, sha256_compress_batch_into
from repro.keyspace import Charset, Interval
from repro.keyspace.vectorized import BlockWorkspace

KERNELS = {
    "md5": (MD5Scratch, md5_compress_batch_into, Endian.LITTLE, hashlib.md5),
    "sha1": (SHA1Scratch, sha1_compress_batch_into, Endian.BIG, hashlib.sha1),
    "sha256": (SHA256Scratch, sha256_compress_batch_into, Endian.BIG, hashlib.sha256),
}


def _batched_blocks(messages, endian):
    """Stack per-message block lists into per-block-index (batch, 16) arrays."""
    padded = [pad_message(m, endian) for m in messages]
    n_blocks = len(padded[0])
    assert all(len(p) == n_blocks for p in padded)
    return [
        np.array([p[i] for p in padded], dtype=np.uint32) for i in range(n_blocks)
    ]


def _digests(registers, endian):
    order = "little" if endian is Endian.LITTLE else "big"
    batch = registers[0].shape[0]
    return [
        b"".join(int(reg[lane]).to_bytes(4, order) for reg in registers)
        for lane in range(batch)
    ]


class TestMatchesHashlib:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    @pytest.mark.parametrize("length", [0, 1, 55, 56, 63, 64, 65, 119, 120, 200])
    def test_multi_block_chaining(self, name, length):
        scratch_cls, compress, endian, reference = KERNELS[name]
        rng = random.Random(hash((name, length)) & 0xFFFF)
        messages = [bytes(rng.randrange(256) for _ in range(length)) for _ in range(7)]
        scratch = scratch_cls(capacity=8)
        state = None
        for blocks in _batched_blocks(messages, endian):
            # state aliases the scratch's own registers from the previous
            # call — the kernel must snapshot before overwriting.
            state = compress(blocks, scratch, state=state)
        expected = [reference(m).digest() for m in messages]
        assert _digests(state, endian) == expected

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_random_lengths_property(self, name):
        scratch_cls, compress, endian, reference = KERNELS[name]
        rng = random.Random(20140519)
        scratch = scratch_cls(capacity=4)
        for _ in range(25):
            length = rng.randrange(0, 300)
            messages = [
                bytes(rng.randrange(256) for _ in range(length)) for _ in range(4)
            ]
            state = None
            for blocks in _batched_blocks(messages, endian):
                state = compress(blocks, scratch, state=state)
            assert _digests(state, endian) == [reference(m).digest() for m in messages]

    def test_md4_matches_reference_batch(self):
        rng = random.Random(4)
        scratch = MD4Scratch(capacity=6)
        messages = [bytes(rng.randrange(256) for _ in range(13)) for _ in range(6)]
        blocks = _batched_blocks(messages, Endian.LITTLE)
        assert len(blocks) == 1
        regs = md4_compress_batch_into(blocks[0], scratch)
        expected = md4_batch(blocks[0])
        got = np.stack(regs, axis=1)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_partial_batch_view(self, name):
        # A batch smaller than capacity runs through views of the same
        # scratch and must not disturb correctness.
        scratch_cls, compress, endian, reference = KERNELS[name]
        scratch = scratch_cls(capacity=32)
        messages = [b"abc", b"", b"partial!"]
        blocks = _batched_blocks([b"abc"], endian)[0]
        for msg in messages:
            state = None
            for blk in _batched_blocks([msg], endian):
                state = compress(blk, scratch, state=state)
            assert _digests(state, endian) == [reference(msg).digest()]
        with pytest.raises(ValueError):
            compress(np.zeros((64, 16), dtype=np.uint32), scratch)


class TestAllocationFree:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_repeated_calls_do_not_grow(self, name):
        scratch_cls, compress, _endian, _ref = KERNELS[name]
        batch = 256
        scratch = scratch_cls(capacity=batch)
        blocks = np.arange(batch * 16, dtype=np.uint32).reshape(batch, 16)
        for _ in range(3):  # warm caches (ufunc loops, views) before tracing
            compress(blocks, scratch)
        tracemalloc.start()
        try:
            compress(blocks, scratch)
            baseline, _ = tracemalloc.get_traced_memory()
            for _ in range(50):
                compress(blocks, scratch)
            current, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # 50 batches of 256 lanes would be ~3 MB of fresh uint32 arrays if
        # the kernel allocated; views + return tuples stay under a few KB.
        assert current - baseline < 16_384

    def test_workspace_fill_does_not_grow(self):
        charset = Charset("abcdef", name="abcdef")
        target = CrackTarget.from_password("fed", charset, min_length=1, max_length=4)
        workspace = BlockWorkspace(512, max_length=target.max_length)
        mapping = target.mapping

        def sweep():
            pos = 0
            while pos < mapping.size:
                count = min(512, mapping.size - pos)
                segments = workspace.fill(mapping, pos, count, target.endian.value,
                                          target.prefix, target.suffix)
                for segment in segments:
                    assert segment.blocks.shape[1] == 16
                pos += count

        sweep()
        tracemalloc.start()
        try:
            sweep()
            baseline, _ = tracemalloc.get_traced_memory()
            for _ in range(10):
                sweep()
            current, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert current - baseline < 65_536

    def test_rotl_into_aliasing_contract(self):
        x = np.arange(8, dtype=np.uint32) * 0x01020304
        tmp = np.empty_like(x)
        expected = np_rotl32(x, 7)
        out = np_rotl32_into(x, 7, tmp, x)  # out aliases x: allowed
        assert out is x
        assert np.array_equal(x, expected)

    def test_scratch_rejects_oversized_batch(self):
        scratch = CompressScratch(capacity=8, n_registers=4, n_temps=2)
        with pytest.raises(ValueError, match="capacity"):
            scratch.registers(9)


class TestEnginePartialBatch:
    def test_partial_final_batch_counted_once(self):
        charset = Charset("abcd", name="abcd")
        probe = CrackTarget.from_password("a", charset, min_length=1, max_length=4)
        password = probe.mapping.key_at(140)  # lands inside the partial tail
        target = CrackTarget.from_password(password, charset, min_length=1, max_length=4)
        password_id = target.mapping.index_of(password)
        assert password_id == 140
        engine = CrackEngine(target, batch_size=64)
        workspace = engine._workspace
        # 64 + 64 + 22: final partial batch must run exactly once, through
        # views of the same preallocated workspace.
        interval = Interval(0, 150)
        found = engine.search(interval)
        assert found == [(password_id, password)]
        assert engine.stats.batches == 3
        assert engine.stats.tested == 150
        assert engine._workspace is workspace  # no reallocation mid-search

    def test_partial_batch_matches_full_batch_results(self):
        charset = Charset("abcd", name="abcd")
        target = CrackTarget.from_password("dcba", charset, min_length=1, max_length=4)
        space = Interval(0, target.space_size)
        aligned = CrackEngine(target, batch_size=target.space_size).search(space)
        ragged = CrackEngine(target, batch_size=37).search(space)
        assert aligned == ragged
        assert "dcba" in {k for _, k in ragged}

    def test_naive_kernel_partial_batch(self):
        charset = Charset("xyz", name="xyz")
        target = CrackTarget.from_password(
            "zyx", charset, min_length=1, max_length=3, suffix=b"+salt"
        )
        engine = CrackEngine(target, batch_size=17)
        found = engine.search(Interval(0, target.space_size))
        assert "zyx" in {k for _, k in found}
        expected_batches = -(-target.space_size // 17)
        assert engine.stats.batches == expected_batches
