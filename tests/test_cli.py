"""Tests for the command-line interface."""

import hashlib

import pytest

from repro.cli import CHARSETS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_charset_choices_cover_catalog(self):
        assert "alnum" in CHARSETS and "lower" in CHARSETS
        for charset in CHARSETS.values():
            assert len(charset) > 0


class TestCrackCommand:
    def test_cracks_known_digest(self, capsys):
        digest = hashlib.md5(b"cab").hexdigest()
        code = main(["crack", digest, "--charset", "lower", "--max-length", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FOUND: 'cab'" in out

    def test_salted_crack(self, capsys):
        digest = hashlib.md5(b"ab!x").hexdigest()
        code = main(
            ["crack", digest, "--charset", "lower", "--max-length", "2", "--suffix", "!x"]
        )
        assert code == 0
        assert "'ab'" in capsys.readouterr().out

    def test_sha1(self, capsys):
        digest = hashlib.sha1(b"7").hexdigest()
        code = main(["crack", digest, "--algorithm", "sha1", "--charset", "digits",
                     "--max-length", "1"])
        assert code == 0
        assert "'7'" in capsys.readouterr().out

    def test_miss_returns_1(self, capsys):
        digest = hashlib.md5(b"not-findable-here").hexdigest()
        code = main(["crack", digest, "--charset", "digits", "--max-length", "2"])
        assert code == 1
        assert "no preimage" in capsys.readouterr().out

    def test_bad_hex_returns_2(self, capsys):
        assert main(["crack", "zz-not-hex"]) == 2
        assert "hexadecimal" in capsys.readouterr().err

    def test_bad_digest_length_returns_2(self, capsys):
        assert main(["crack", "abcd"]) == 2
        assert "16 bytes" in capsys.readouterr().err

    def test_all_flag_finds_every_preimage(self, capsys):
        digest = hashlib.md5(b"9").hexdigest()
        code = main(["crack", digest, "--charset", "digits", "--max-length", "2", "--all"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("FOUND") == 1
        assert "tested 110" in out  # the whole 10 + 100 space


class TestEstimateCommand:
    def test_prints_time_scales(self, capsys):
        code = main(["estimate", "--charset", "alnum", "--max-length", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "221,919,451,578,090" in out
        assert "hours" in out and "years" in out


class TestMineCommand:
    def test_finds_winner_at_low_difficulty(self, capsys):
        code = main(["mine", "--difficulty", "8", "--scan", "4096", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "WINNER" in out

    def test_no_winner_returns_1(self, capsys):
        code = main(["mine", "--difficulty", "200", "--scan", "256"])
        assert code == 1
        assert "no winner" in capsys.readouterr().out


class TestInfoCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table VIII" in out
        assert "660" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "8800" in out and "TitanCC35" in out


class TestMaskCommand:
    def test_cracks_mask_shaped_password(self, capsys):
        digest = hashlib.md5(b"Xy4").hexdigest()
        code = main(["mask", digest, "?u?l?d"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FOUND: 'Xy4'" in out
        assert "6,760 keys" in out

    def test_salted_mask(self, capsys):
        digest = hashlib.md5(b"A1$x").hexdigest()
        code = main(["mask", digest, "?u?d", "--suffix", "$x"])
        assert code == 0
        assert "'A1'" in capsys.readouterr().out

    def test_miss_returns_1(self, capsys):
        digest = hashlib.md5(b"outside").hexdigest()
        assert main(["mask", digest, "?d?d"]) == 1

    def test_bad_mask_returns_2(self, capsys):
        digest = hashlib.md5(b"x").hexdigest()
        assert main(["mask", digest, "?z"]) == 2
        assert "unknown mask token" in capsys.readouterr().err

    def test_bad_hex_returns_2(self, capsys):
        assert main(["mask", "nothex", "?d"]) == 2


class TestReportCommand:
    def test_report_prints_tables(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Table VIII" in out and "Table IX" in out


class TestNTLMCrackCommand:
    def test_cracks_known_ntlm_hash(self, capsys):
        # NTLM("password") — the most famous hash in Windows auditing.
        # Use a short one for test speed:
        from repro.apps.ntlm import ntlm_hex

        code = main(["crack", ntlm_hex("dog"), "--algorithm", "ntlm",
                     "--charset", "lower", "--max-length", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FOUND: 'dog'" in out
        assert "NTLM" in out

    def test_salt_flags_rejected(self, capsys):
        from repro.apps.ntlm import ntlm_hex

        code = main(["crack", ntlm_hex("x"), "--algorithm", "ntlm", "--suffix", "s"])
        assert code == 2
        assert "unsalted by definition" in capsys.readouterr().err


class TestMetricsFlags:
    DIGEST = hashlib.md5(b"cab").hexdigest()

    def crack_args(self, *extra):
        return ["crack", self.DIGEST, "--charset", "lower", "--max-length", "3",
                "--backend", "serial", *extra]

    def test_metrics_off_is_default_and_silent(self, capsys):
        assert main(self.crack_args()) == 0
        assert "metrics" not in capsys.readouterr().out

    def test_metrics_summary_renders_phases(self, capsys):
        assert main(self.crack_args("--metrics", "summary")) == 0
        out = capsys.readouterr().out
        assert "metrics (repro-metrics/v2)" in out
        assert "phase.search" in out
        assert "worker.keys_per_second" in out
        assert "FOUND: 'cab'" in out

    def test_metrics_json_is_schema_valid(self, capsys):
        import json as json_module

        from repro.obs import validate_metrics

        assert main(self.crack_args("--metrics", "json")) == 0
        out = capsys.readouterr().out
        start, stop = out.index("{"), out.rindex("}") + 1
        document = json_module.loads(out[start:stop])
        assert validate_metrics(document) == []
        assert document["schema"] == "repro-metrics/v2"

    def test_metrics_out_writes_file(self, capsys, tmp_path):
        import json as json_module

        from repro.obs import validate_metrics

        path = tmp_path / "metrics.json"
        assert main(self.crack_args("--metrics-out", str(path))) == 0
        assert f"metrics written to {path}" in capsys.readouterr().out
        document = json_module.loads(path.read_text())
        assert validate_metrics(document) == []

    def test_ntlm_path_records_metrics(self, capsys):
        from repro.apps.ntlm import ntlm_hex

        code = main(["crack", ntlm_hex("dog"), "--algorithm", "ntlm",
                     "--charset", "lower", "--max-length", "3",
                     "--metrics", "summary"])
        out = capsys.readouterr().out
        assert code == 0
        assert "metrics (repro-metrics/v2)" in out
        assert "backend=ntlm" in out
