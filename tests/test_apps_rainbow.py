"""Tests for lookup/rainbow tables and the salting argument (Section I)."""

import hashlib

import pytest

from repro.apps.rainbow import LookupTable, RainbowTable
from repro.keyspace import Charset
from repro.kernels.variants import HashAlgorithm

ABC = Charset("abc", name="abc")


class TestLookupTable:
    def test_exact_inversion(self):
        table = LookupTable(ABC, key_length=3).build()
        assert table.entries == 27
        assert table.lookup(hashlib.md5(b"bca").digest()) == "bca"
        assert table.lookup(hashlib.md5(b"zzz").digest()) is None

    def test_salting_voids_the_table(self):
        # The paper's claim: the precomputation is for the exact message.
        table = LookupTable(ABC, key_length=3).build()
        salted = hashlib.md5(b"bca" + b"::salt").digest()
        assert table.lookup(salted) is None

    def test_memory_grows_with_space(self):
        small = LookupTable(ABC, key_length=2).build()
        big = LookupTable(ABC, key_length=3).build()
        assert big.memory_bytes > small.memory_bytes
        assert small.memory_bytes == 9 * (16 + 2)

    def test_sha1_variant(self):
        table = LookupTable(ABC, key_length=2, algorithm=HashAlgorithm.SHA1).build()
        assert table.lookup(hashlib.sha1(b"cb").digest()) == "cb"


class TestRainbowTable:
    @pytest.fixture(scope="class")
    def table(self):
        return RainbowTable(ABC, key_length=3, chain_length=20, n_chains=40, seed=3).build()

    def test_validation(self):
        with pytest.raises(ValueError):
            RainbowTable(ABC, 3, chain_length=0)
        with pytest.raises(ValueError):
            RainbowTable(ABC, 3, n_chains=0)

    def test_reduction_is_position_dependent(self, table):
        digest = hashlib.md5(b"probe").digest()
        keys = {table.reduce(digest, p) for p in range(10)}
        assert len(keys) > 1
        for key in keys:
            assert len(key) == 3
            assert ABC.is_valid_key(key)

    def test_lookup_result_is_always_a_true_preimage(self, table):
        found = 0
        for key in ("aaa", "abc", "cab", "bbb", "ccc", "bac"):
            digest = hashlib.md5(key.encode()).digest()
            result = table.lookup(digest)
            if result is not None:
                found += 1
                assert hashlib.md5(result.encode()).digest() == digest

    def test_covers_a_useful_fraction_in_little_memory(self, table):
        coverage = table.coverage_sample(sample=27)
        # 40 chains x 20 steps can touch most of a 27-key space; the exact
        # number is deterministic given the seed, so pin a healthy band.
        assert coverage > 0.5
        # ... using far less memory than the exhaustive lookup table.
        full = LookupTable(ABC, key_length=3).build()
        assert table.memory_bytes < full.memory_bytes

    def test_salting_voids_the_chains(self, table):
        # Exactly the paper's point: one salt byte, zero table hits.
        for key in ("aaa", "cab", "bcb"):
            salted = hashlib.md5(key.encode() + b"$").digest()
            assert table.lookup(salted) is None

    def test_chain_merges_reduce_storage(self):
        table = RainbowTable(ABC, key_length=2, chain_length=15, n_chains=60, seed=1).build()
        # 60 chains over a 9-key space must merge heavily.
        assert table.stored_chains < 60

    def test_coverage_sample_validation(self, table):
        with pytest.raises(ValueError):
            table.coverage_sample(0)

    def test_brute_force_still_works_where_rainbow_fails(self, table):
        # The punchline: the salted digest that voids the table falls to
        # the brute-force engine with the salt in the template.
        from repro.apps.cracking import CrackEngine, CrackTarget

        salted_digest = hashlib.md5(b"cab" + b"$").digest()
        assert table.lookup(salted_digest) is None
        target = CrackTarget(
            algorithm=HashAlgorithm.MD5,
            digest=salted_digest,
            charset=ABC,
            min_length=3,
            max_length=3,
            suffix=b"$",
        )
        matches = CrackEngine(target).search_all()
        assert [k for _, k in matches] == ["cab"]


class TestVectorizedChainConsistency:
    """The batched chain arithmetic must equal the scalar reference."""

    def test_step_batch_equals_scalar_step(self):
        import numpy as np

        table = RainbowTable(ABC, key_length=3, chain_length=5, n_chains=4, seed=9)
        keys = ["abc", "cab", "bbb", "aaa"]
        chars = np.stack([np.frombuffer(k.encode(), dtype=np.uint8) for k in keys])
        for position in (0, 3, 17):
            positions = np.full(4, position, dtype=np.uint64)
            stepped = table._step_batch(chars, positions)
            for row, key in zip(stepped, keys):
                assert row.tobytes().decode() == table._step(key, position)

    def test_sha1_reduction_matches_scalar(self):
        import numpy as np

        table = RainbowTable(
            ABC, key_length=3, chain_length=5, n_chains=4,
            algorithm=HashAlgorithm.SHA1, seed=9,
        )
        digest = hashlib.sha1(b"probe").digest()
        words = table._digest_words(digest)[None, :]
        for position in (0, 7):
            batch = table._reduce_batch(words, np.array([position], dtype=np.uint64))
            assert batch[0].tobytes().decode() == table.reduce(digest, position)

    def test_replay_batch_equals_scalar_replay(self):
        table = RainbowTable(ABC, key_length=3, chain_length=12, n_chains=8, seed=5).build()
        hits = [(11, "aaa"), (0, "cab"), (6, "bcb")]
        batch = table._replay_batch(hits)
        for (position, start), candidate in zip(hits, batch):
            assert candidate == table._replay(start, position)
