"""Tests for the cost model and the high-level session API."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import (
    CostModel,
    DispatchCosts,
    dispatch_bounds,
    fixed_costs_negligible,
    process_efficiency,
    sequential_search_cost,
)
from repro.core.session import CrackingSession
from repro.apps.cracking import CrackTarget
from repro.cluster.topology import build_paper_network
from repro.keyspace import ALNUM_MIXED, Charset

ABC = Charset("abc", name="abc")


class TestCostModel:
    def test_search_cost_with_next(self):
        m = CostModel(k_f=10.0, k_next=1.0, k_c=2.0)
        # K_f + (n-1) K_next + n K_c
        assert sequential_search_cost(5, m) == 10 + 4 + 10

    def test_search_cost_without_next(self):
        m = CostModel(k_f=10.0, k_next=1.0, k_c=2.0)
        assert sequential_search_cost(5, m, use_next=False) == 5 * 12

    def test_zero_candidates(self):
        m = CostModel(1, 1, 1)
        assert sequential_search_cost(0, m) == 0.0
        assert process_efficiency(0, m) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostModel(-1, 0, 0)
        with pytest.raises(ValueError):
            sequential_search_cost(-1, CostModel(1, 1, 1))

    @given(n=st.integers(1, 10**6))
    @settings(max_examples=30)
    def test_efficiency_increases_with_n_when_next_cheaper(self, n):
        # "If K_next < K_f then the process' efficiency ... will increase
        # for larger n."
        m = CostModel(k_f=100.0, k_next=0.5, k_c=2.0)
        assert process_efficiency(n + 1, m) >= process_efficiency(n, m)

    def test_efficiency_limit(self):
        m = CostModel(k_f=100.0, k_next=0.5, k_c=2.0)
        assert process_efficiency(10**9, m) == pytest.approx(2.0 / 2.5, rel=1e-3)


class TestDispatchBounds:
    def test_bounds_order(self):
        costs = DispatchCosts(
            scatter=[0.1, 0.2, 0.3], search=[5.0, 7.0, 6.0], gather=[0.1, 0.1, 0.1], merge=0.5
        )
        lower, upper = dispatch_bounds(costs)
        assert lower <= upper
        assert lower == pytest.approx(7.0 + 0.2 + 0.1 + 0.5)
        assert upper == pytest.approx(0.6 + 7.0 + 0.3 + 0.5)

    def test_single_node_bounds_coincide(self):
        costs = DispatchCosts(scatter=[0.1], search=[3.0], gather=[0.2], merge=0.0)
        lower, upper = dispatch_bounds(costs)
        assert lower == upper == pytest.approx(3.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            DispatchCosts(scatter=[1], search=[1, 2], gather=[1])
        with pytest.raises(ValueError):
            DispatchCosts(scatter=[], search=[], gather=[])

    def test_fixed_costs_negligible_regime(self):
        small = DispatchCosts(scatter=[1e-3] * 3, search=[10.0] * 3, gather=[1e-3] * 3)
        big = DispatchCosts(scatter=[1.0] * 3, search=[10.0] * 3, gather=[1.0] * 3)
        assert fixed_costs_negligible(small)
        assert not fixed_costs_negligible(big)

    @given(
        scatter=st.lists(st.floats(0, 1), min_size=1, max_size=6),
        search=st.lists(st.floats(0, 100), min_size=6, max_size=6),
        gather=st.lists(st.floats(0, 1), min_size=6, max_size=6),
    )
    @settings(max_examples=30)
    def test_property_lower_never_exceeds_upper(self, scatter, search, gather):
        n = len(scatter)
        costs = DispatchCosts(scatter=scatter, search=search[:n], gather=gather[:n])
        lower, upper = dispatch_bounds(costs)
        assert lower <= upper + 1e-12


class TestCrackingSession:
    def target(self, password="cab"):
        return CrackTarget.from_password(password, ABC, min_length=1, max_length=3)

    def test_sequential_backend(self):
        result = CrackingSession(self.target()).run(backend="sequential")
        assert result.passwords == ["cab"]
        assert result.backend == "sequential"
        assert result.tested == self.target().space_size

    def test_sequential_stop_after(self):
        result = CrackingSession(self.target("a")).run(
            backend="sequential", stop_after=1
        )
        assert result.cracked
        assert result.tested < self.target().space_size

    def test_local_backend_agrees_with_sequential(self):
        session = CrackingSession(self.target())
        seq = session.run(backend="sequential")
        loc = session.run(backend="serial", workers=1, batch_size=64)
        assert seq.found == loc.found
        assert loc.backend == "serial"  # one worker resolves to the inline backend

    def test_estimate_on_paper_network(self):
        session = CrackingSession(
            CrackTarget.from_password("dog", ALNUM_MIXED, min_length=1, max_length=8)
        )
        estimate = session.estimate_on(build_paper_network())
        # ~2.2e14 candidates at ~3.25 Gkeys/s: about 19 hours.
        assert estimate.space_size == 221_919_451_578_090
        assert 15 < estimate.hours_full_scan < 24
        assert estimate.seconds_expected == pytest.approx(estimate.seconds_full_scan / 2)
        assert estimate.years_full_scan < 0.01

    def test_simulate_on_reports_finding_device(self):
        target = self.target("cab")
        result = CrackingSession(target).simulate_on(
            build_paper_network(), planted_password="cab", round_size=13
        )
        assert len(result.found) == 1
        device, index = result.found[0]
        assert index == target.mapping.index_of("cab")
        assert device in {"540M", "660", "550Ti", "8600M", "8800"}

    def test_simulate_on_scale_truncates(self):
        target = CrackTarget.from_password("dog", ALNUM_MIXED, max_length=8)
        result = CrackingSession(target).simulate_on(build_paper_network(), scale=10**7)
        assert result.total_candidates == 10**7
