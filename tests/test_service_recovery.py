"""Crash-recovery: a killed checkpointed run resumes with exact coverage.

The acceptance bar from the issue: kill a checkpointing run after k
chunks, resume it, and the resumed + pre-kill tested counts must not
exceed the uninterrupted run's count by more than one chunk — no interval
is ever re-tested beyond checkpoint-lag, and the same password is found.
"""

import hashlib
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cracking import CrackTarget
from repro.cli import main
from repro.core.progress import ProgressLog
from repro.core.session import CrackingSession
from repro.keyspace import Charset

ABC = Charset("abc", name="abc")

passwords = st.text(alphabet="abc", min_size=1, max_size=4)


class TestInProcessRecovery:
    @settings(max_examples=25, deadline=None)
    @given(
        password=passwords,
        chunk_size=st.integers(5, 40),
        kill_after_chunks=st.integers(0, 6),
        checkpoint_every=st.integers(1, 3),
    )
    def test_kill_resume_equals_uninterrupted(
        self, password, chunk_size, kill_after_chunks, checkpoint_every
    ):
        target = CrackTarget.from_password(password, ABC, min_length=1, max_length=4)
        total = target.space_size
        session = CrackingSession(target)

        # Reference: the same chunked run, never interrupted.
        reference = session.run(
            "serial",
            stop_on_first=True,
            progress=ProgressLog(total=total),
            chunk_size=chunk_size,
        )

        # Interrupted run: stop cooperatively after k gathered chunks, and
        # keep only the *periodic* checkpoints — the final in-memory state
        # dies with the "process", exactly like kill -9 between writes.
        durable = []
        live = ProgressLog(total=total)
        session.run(
            "serial",
            stop_on_first=True,
            progress=live,
            checkpoint=lambda log: durable.append(log.to_json()),
            checkpoint_every=checkpoint_every,
            chunk_size=chunk_size,
            preempt=lambda: live.done_count >= kill_after_chunks * chunk_size,
        )
        periodic = durable[:-1]  # drop the final flush a SIGKILL would lose
        restored = (
            ProgressLog.from_json(periodic[-1]) if periodic else ProgressLog(total=total)
        )
        tested_before = restored.done_count
        assert restored.check_invariant()

        # Resume from the durable state (the CLI checks "satisfied" first).
        if restored.found:
            tested_resumed = 0
            final = restored
        else:
            resumed = session.run(
                "serial",
                stop_on_first=True,
                progress=restored,
                chunk_size=chunk_size,
            )
            tested_resumed = resumed.tested
            final = resumed.progress

        assert final.found == reference.progress.found
        assert [k for _, k in final.found] == [password]
        assert tested_before + tested_resumed <= reference.tested + chunk_size
        assert final.check_invariant()


class TestKillDashNine:
    """The real thing: SIGKILL a `repro crack --checkpoint-dir` subprocess."""

    PASSWORD = "aaaam"  # ~46% into the length-5 lowercase space
    CHUNK = 20_000

    def crack_args(self, store: Path) -> list[str]:
        digest = hashlib.md5(self.PASSWORD.encode()).hexdigest()
        return [
            "crack", digest, "--charset", "lower",
            "--min-length", "5", "--max-length", "5",
            "--checkpoint-dir", str(store),
            "--chunk-size", str(self.CHUNK), "--job-id", "killme",
        ]

    def read_checkpoint(self, store: Path) -> dict | None:
        path = store / "killme" / "checkpoint.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())  # atomic rename: never torn

    @pytest.mark.slow
    def test_sigkill_then_resume_finds_the_password(self, tmp_path, capsys):
        target = CrackTarget.from_password(
            self.PASSWORD, Charset("abcdefghijklmnopqrstuvwxyz"),
            min_length=5, max_length=5,
        )
        space = target.space_size
        index = target.mapping.index_of(self.PASSWORD)
        # An uninterrupted serial run stops at the end of the chunk that
        # contains the password: that is the budget resume must not exceed.
        tested_uninterrupted = (index // self.CHUNK + 1) * self.CHUNK

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *self.crack_args(tmp_path)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                document = self.read_checkpoint(tmp_path)
                done = (
                    sum(b - a for a, b in document["progress"]["completed"])
                    if document else 0
                )
                if done > 0:
                    break
                assert proc.poll() is None, "crack finished before we could kill it"
                time.sleep(0.01)
            else:
                pytest.fail("no checkpoint appeared within the deadline")
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        document = self.read_checkpoint(tmp_path)
        restored = ProgressLog.from_json(json.dumps(document["progress"]))
        tested_before = restored.done_count
        assert 0 < tested_before < space
        assert restored.check_invariant()
        assert not restored.found  # killed long before the password

        # Rerun the identical command in-process: it must resume, not restart.
        code = main(self.crack_args(tmp_path))
        out = capsys.readouterr().out
        assert code == 0
        assert "resuming job killme" in out
        assert f"FOUND: '{self.PASSWORD}'" in out
        tested_resumed = int(
            re.search(r"tested ([\d,]+) this run", out).group(1).replace(",", "")
        )
        assert tested_before + tested_resumed <= tested_uninterrupted + self.CHUNK
