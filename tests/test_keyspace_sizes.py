"""Unit and property tests for the Equation (2)/(3) size algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.keyspace import (
    count_of_length,
    length_of_index,
    length_offset,
    max_index_for_uint64,
    space_size,
)


class TestClosedForms:
    def test_paper_intro_example_8_alpha(self):
        # "the number of strings containing at most 8 alphabetic characters
        # (both lower and upper case) is ~54,508 billions"
        assert space_size(52, 1, 8) == pytest.approx(54_508e9, rel=1e-3)

    def test_paper_intro_example_10_alpha(self):
        # "... with 10 characters it becomes ~147,389,520 billions"
        assert space_size(52, 1, 10) == pytest.approx(147_389_520e9, rel=1e-3)

    def test_small_space_by_enumeration(self):
        # eps, a, b, c, aa..cc, aaa..ccc = 1 + 3 + 9 + 27
        assert space_size(3, 0, 3) == 40

    def test_single_length_window(self):
        assert space_size(26, 5, 5) == 26**5

    def test_degenerate_unary_alphabet_equation3(self):
        assert space_size(1, 2, 7) == 6
        assert space_size(1, 0, 0) == 1

    def test_count_of_length(self):
        assert count_of_length(62, 0) == 1
        assert count_of_length(62, 3) == 62**3

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            space_size(0, 0, 1)
        with pytest.raises(ValueError):
            space_size(3, -1, 1)
        with pytest.raises(ValueError):
            space_size(3, 2, 1)
        with pytest.raises(ValueError):
            count_of_length(3, -1)


@given(n=st.integers(2, 100), k0=st.integers(0, 12), span=st.integers(0, 12))
def test_closed_form_equals_direct_sum(n, k0, span):
    k = k0 + span
    assert space_size(n, k0, k) == sum(n**i for i in range(k0, k + 1))


@given(n=st.integers(1, 64), k0=st.integers(0, 8), span=st.integers(0, 6))
def test_space_size_additive_over_strata(n, k0, span):
    k = k0 + span
    total = space_size(n, k0, k)
    assert total == sum(count_of_length(n, i) for i in range(k0, k + 1))


class TestLengthOffsets:
    def test_offset_of_first_length_is_zero(self):
        assert length_offset(3, 0, 0) == 0
        assert length_offset(3, 2, 2) == 0

    def test_offsets_are_cumulative(self):
        # With charset size 3 and min length 0: strata sizes 1, 3, 9, 27 ...
        assert length_offset(3, 0, 1) == 1
        assert length_offset(3, 0, 2) == 4
        assert length_offset(3, 0, 3) == 13

    @given(
        n=st.integers(2, 40),
        min_length=st.integers(0, 4),
        index=st.integers(0, 10**9),
    )
    def test_length_of_index_inverts_offset(self, n, min_length, index):
        length, within = length_of_index(n, min_length, index)
        assert length >= min_length
        assert 0 <= within < count_of_length(n, length)
        assert length_offset(n, min_length, length) + within == index

    def test_length_of_index_rejects_negative(self):
        with pytest.raises(ValueError):
            length_of_index(3, 0, -1)


class TestUint64Limit:
    def test_limit_is_tight(self):
        for n in (2, 26, 62, 95):
            limit = max_index_for_uint64(n)
            assert n**limit <= 2**63
            assert n ** (limit + 1) > 2**63

    def test_known_values(self):
        assert max_index_for_uint64(62) == 10
        assert max_index_for_uint64(2) == 63
