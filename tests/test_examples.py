"""Smoke tests: every example script must run to completion.

The examples are the library's living documentation; each one carries its
own assertions (planted passwords found, coverage exact, ...), so simply
executing them is a meaningful integration test.  Heavier scripts are
marked slow; run them with ``pytest -m slow`` or no marker filter.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    """Execute an example in-process and return its stdout."""
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "cracked       : ['dog']" in out

    def test_salted_audit(self, capsys):
        out = run_example("salted_audit.py", capsys)
        assert "CRACKED alice" in out
        assert "'dragon7'" in out

    def test_bitcoin_mining(self, capsys):
        out = run_example("bitcoin_mining.py", capsys)
        assert "block solved" in out or "no winner" in out

    def test_fault_tolerant_cluster(self, capsys):
        out = run_example("fault_tolerant_cluster.py", capsys)
        assert "coverage exact : True" in out

    def test_kernel_tuning(self, capsys):
        out = run_example("kernel_tuning.py", capsys)
        assert "bottleneck" in out
        assert "funnel" in out.lower()

    def test_distributed_runtime(self, capsys):
        out = run_example("distributed_runtime.py", capsys)
        assert "['rust']" in out
        assert "coverage exact: True" in out


@pytest.mark.slow
class TestSlowExamples:
    def test_gpu_cluster_simulation(self, capsys):
        out = run_example("gpu_cluster_simulation.py", capsys)
        assert "network throughput" in out
        assert "paper: 3258.4" in out

    def test_markov_guided_attack(self, capsys):
        out = run_example("markov_guided_attack.py", capsys)
        assert "cracked 'passio'" in out

    def test_rainbow_vs_salting(self, capsys):
        out = run_example("rainbow_vs_salting.py", capsys)
        assert "rainbow table -> 'wolf'" in out
        assert "rainbow table -> None" in out


def test_every_example_is_covered():
    """No example script may be missing from this smoke suite."""
    here = Path(__file__).read_text()
    for script in EXAMPLES.glob("*.py"):
        assert script.name in here, f"example {script.name} lacks a smoke test"


class TestNTLMExample:
    def test_ntlm_windows_audit(self, capsys):
        out = run_example("ntlm_windows_audit.py", capsys)
        assert "duplicate password detected" in out
        assert "CRACKED svc_backup" in out and "'dog1'" in out
        assert "held    administrator" in out
