"""Tests for the analysis helpers (reference data + table rendering)."""

import pytest

from repro.analysis.paper_data import (
    PAPER_CLAIMS,
    PAPER_TABLE_I,
    PAPER_TABLE_II,
    PAPER_TABLE_VII,
    PAPER_TABLE_VIII,
    PAPER_TABLE_IX,
)
from repro.analysis.tables import (
    Comparison,
    compare_rows,
    max_abs_delta,
    render_comparison,
    render_table,
)


class TestPaperDataConsistency:
    """Internal consistency of the transcribed reference tables."""

    def test_table1_cores_equal_groups_times_size(self):
        for row in PAPER_TABLE_I.values():
            assert row["Cores per MP"] == row["Groups of cores per MP"] * row["Group size"]

    def test_table2_add_at_least_lop(self):
        for cc in ("1.*", "2.0", "2.1", "3.0"):
            assert (
                PAPER_TABLE_II["32-bit integer ADD"][cc]
                >= PAPER_TABLE_II["32-bit bitwise AND/OR/XOR"][cc]
            )

    def test_table7_matches_table1_core_counts(self):
        cc_to_cores = {"1.1": 8, "2.1": 48, "3.0": 192}
        for row in PAPER_TABLE_VII.values():
            per_mp = cc_to_cores[row["Compute capability"]]
            assert row["Cores"] == per_mp * row["Multiprocessors"]

    def test_table9_is_the_sum_of_table8(self):
        # The paper's network rows equal the sums of its device rows.
        for algo in ("MD5", "SHA1"):
            theo = sum(PAPER_TABLE_VIII[f"{algo} (theoretical)"].values())
            assert PAPER_TABLE_IX[algo]["theoretical"] == pytest.approx(theo, rel=0.001)
            ours = sum(PAPER_TABLE_VIII[f"{algo} (our approach)"].values())
            assert PAPER_TABLE_IX[algo]["our approach"] == pytest.approx(ours, rel=0.001)

    def test_table9_efficiency_is_the_ratio(self):
        for algo in ("MD5", "SHA1"):
            row = PAPER_TABLE_IX[algo]
            assert row["efficiency"] == pytest.approx(
                row["our approach"] / row["theoretical"], abs=0.001
            )

    def test_claims_sane(self):
        assert PAPER_CLAIMS["md5_R_ratio"] == pytest.approx(2.93, abs=0.01)
        assert 0 < PAPER_CLAIMS["kepler_efficiency"] <= 1


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table("T", ["a", "b"], [[1, 2.5], [30, None]], row_labels=["x", "y"])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "b" in lines[2]
        assert "x" in lines[4] and "2.5" in lines[4]
        assert "-" in lines[5]  # None renders as a dash

    def test_empty_rows(self):
        text = render_table("T", ["col"], [])
        assert "col" in text

    def test_float_formatting(self):
        text = render_table("T", ["v"], [[1234.5678], [0.123456]])
        assert "1234.6" in text
        assert "0.1235" in text


class TestComparison:
    def test_delta_pct(self):
        assert Comparison("x", 100.0, 110.0).delta_pct == pytest.approx(10.0)
        assert Comparison("x", 100.0, None).delta_pct is None
        assert Comparison("x", None, 5.0).delta_pct is None
        assert Comparison("x", 0, 5.0).delta_pct is None

    def test_compare_rows_preserves_order(self):
        comparisons = compare_rows({"a": 1.0, "b": 2.0}, {"b": 2.2, "a": 1.1})
        assert [c.label for c in comparisons] == ["a", "b"]
        assert comparisons[1].ours == 2.2

    def test_max_abs_delta(self):
        comparisons = [
            Comparison("a", 100, 90),
            Comparison("b", 100, 120),
            Comparison("c", None, 5),
        ]
        assert max_abs_delta(comparisons) == pytest.approx(20.0)
        assert max_abs_delta([]) == 0.0

    def test_render_comparison(self):
        text = render_comparison("T", [Comparison("row", 100.0, 95.0)])
        assert "-5.0%" in text
        assert "row" in text
