#!/usr/bin/env python
"""Fault tolerance: losing nodes mid-search without losing candidates.

Section III sketches a "minimum fault tolerance model" and flags its
weakness — a dead dispatcher silences its whole subtree.  This example
injects exactly that failure into the paper's A/B/C/D network, watches the
master requeue the lost intervals over the survivors, and proves coverage:
every candidate is tested exactly once despite the churn.

Run:  python examples/fault_tolerant_cluster.py
"""

from repro.cluster import FaultPlan, build_paper_network, run_with_faults
from repro.kernels.variants import HashAlgorithm

network = build_paper_network(HashAlgorithm.MD5)
TOTAL = 2 * 10**10
ROUND = 10**9

# --------------------------------------------------------------------- #
# Baseline: no failures.
# --------------------------------------------------------------------- #
clean = run_with_faults(network, TOTAL, round_size=ROUND)
print("=== clean run ===")
print(f"rounds {clean.rounds}, wall {clean.wall_time:.1f}s, "
      f"{clean.throughput / 1e6:.0f} Mkeys/s, coverage exact: {clean.covered_exactly}")

# --------------------------------------------------------------------- #
# Kill dispatcher C in round 3: its GPU *and* node D's 8800 go silent
# (the paper's stated weakness); C comes back in round 12.
# --------------------------------------------------------------------- #
plan = FaultPlan(failures={"C": 3}, recoveries={"C": 12}, detection_timeout=2.0)
faulty = run_with_faults(network, TOTAL, round_size=ROUND, plan=plan)
print("\n=== dispatcher C dies in round 3, returns in round 12 ===")
print(f"failure events : {faulty.failure_events}")
print(f"requeued       : {faulty.requeued_candidates:,} candidates "
      f"(the intervals C and D never returned)")
print(f"rounds {faulty.rounds}, wall {faulty.wall_time:.1f}s, "
      f"{faulty.throughput / 1e6:.0f} Mkeys/s")
print(f"coverage exact : {faulty.covered_exactly}")
slowdown = faulty.wall_time / clean.wall_time
print(f"slowdown       : {slowdown:.2f}x "
      f"(subtree C+D holds ~18% of the cluster's power)")

print("\nper-device work:")
for name, intervals in sorted(faulty.completed.items()):
    scanned = sum(iv.size for iv in intervals)
    print(f"  {name:7s} {scanned:>14,} keys in {len(intervals):3d} interval(s)")

assert clean.covered_exactly and faulty.covered_exactly
