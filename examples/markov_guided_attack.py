#!/usr/bin/env python
"""Probability-guided brute force: testing likely passwords first.

Section III-A of the paper notes the bijection f(i) "can be trivial or it
can follow a heuristics to favor testing of the most likely solutions" —
the Markov-chain approach its related work (Marechal; Narayanan &
Shmatikov) develops.  This example trains a bigram model on a small leaked
corpus, cracks a human-style password via the guided order, and compares
the guessing rank against plain lexicographic brute force.

Run:  python examples/markov_guided_attack.py
"""

import itertools

from repro import ALPHA_LOWER, CrackTarget
from repro.apps.markov import MarkovAttack, MarkovModel

# --------------------------------------------------------------------- #
# Train on a (toy) leaked-password corpus.
# --------------------------------------------------------------------- #
CORPUS = [
    "password", "sunshine", "princess", "football", "charlie",
    "shadow", "monkey", "dragon", "master", "summer",
    "passion", "passing", "fashion", "mission", "session",
]
model = MarkovModel(ALPHA_LOWER, smoothing=0.01)
used = model.train(CORPUS)
print(f"trained bigram model on {used} corpus words")

# --------------------------------------------------------------------- #
# Peek at the head of the guided enumeration.
# --------------------------------------------------------------------- #
head = [w for w, _ in itertools.islice(model.iter_candidates(6, 6), 10)]
print(f"ten most likely 6-char candidates: {head}")

# --------------------------------------------------------------------- #
# Crack a corpus-like password.
# --------------------------------------------------------------------- #
target = CrackTarget.from_password("passio", ALPHA_LOWER, min_length=6, max_length=6)
attack = MarkovAttack(model, min_length=6, max_length=6)
findings = attack.search(target, budget=50_000)

assert findings, "the guided order must reach the corpus-like password"
finding = findings[0]
lex_rank = target.mapping.index_of("passio")
print(f"\ncracked {finding.password!r}")
print(f"guided guessing rank : {finding.rank:,}")
print(f"lexicographic rank   : {lex_rank:,}")
print(f"speedup              : {lex_rank / max(finding.rank, 1):,.0f}x fewer guesses")
print(f"model log-probability: {finding.log_prob:.2f}")

# --------------------------------------------------------------------- #
# The flip side: a random password gains nothing from the heuristic.
# --------------------------------------------------------------------- #
random_pw = "qzxvkj"
rank = attack.rank_of(random_pw, limit=50_000)
print(f"\nrandom password {random_pw!r}: "
      f"{'rank ' + format(rank, ',') if rank is not None else 'beyond 50,000 guided guesses'}")
print("— which is exactly why auditing policies force random passwords.")
