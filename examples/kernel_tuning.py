#!/usr/bin/env python
"""The Section V optimization story, replayed step by step.

Walks the MD5 kernel through the paper's optimization ladder and shows how
each step changes the instruction mix and the predicted throughput on each
GPU generation:

1. naive kernel — full 64-step hash per candidate (Table IV);
2. digest reversal — revert the target 15 steps once, run 49 forward steps
   per candidate (the BarsWF trick);
3. early exit — compare the first reverted register after step 45,
   saving three more steps (Table V);
4. ``__byte_perm`` — 16-bit rotations become single PRMT instructions on
   Kepler (Table VI);
5. funnel shift — the CC 3.5 extrapolation the paper describes but could
   not measure.

Run:  python examples/kernel_tuning.py
"""

from repro.gpusim.device import DEVICES, PAPER_DEVICES
from repro.gpusim.scheduler import simulate_kernel_cycles
from repro.gpusim.throughput import simulated_throughput, theoretical_throughput
from repro.kernels.variants import HashAlgorithm, KernelVariant, get_kernel

LADDER = [
    (KernelVariant.NAIVE, "naive: 64 steps + digest compare"),
    (KernelVariant.REVERSED, "reversal: 49 forward steps"),
    (KernelVariant.OPTIMIZED, "reversal + early exit: 46 steps"),
    (KernelVariant.BYTE_PERM, "+ __byte_perm on CC 3.0"),
]

# --------------------------------------------------------------------- #
# 1. Instruction mixes per optimization step.
# --------------------------------------------------------------------- #
print("=== MD5 kernel instruction mix (CC 3.0 build) ===")
print(f"{'variant':34s} {'IADD':>5s} {'LOP':>5s} {'SHM':>5s} {'total':>6s} {'R':>5s}")
for variant, label in LADDER:
    mix = get_kernel(HashAlgorithm.MD5, variant).mix_for("3.0")
    print(
        f"{label:34s} {mix.additions:5d} {mix.logicals:5d} "
        f"{mix.shift_mad:5d} {mix.total:6d} {mix.ratio_addlop_to_shiftmad:5.2f}"
    )

# --------------------------------------------------------------------- #
# 2. What each step buys on each GPU generation.
# --------------------------------------------------------------------- #
print("\n=== predicted achieved throughput (Mkeys/s) ===")
devices = ["8800", "550Ti", "660"]
print(f"{'variant':34s} " + " ".join(f"{d:>8s}" for d in devices))
for variant, label in LADDER:
    row = []
    for name in devices:
        dev = PAPER_DEVICES[name]
        mix = get_kernel(HashAlgorithm.MD5, variant).mix_for(dev.family)
        row.append(simulated_throughput(dev, mix))
    print(f"{label:34s} " + " ".join(f"{x:8.1f}" for x in row))

# --------------------------------------------------------------------- #
# 3. The bottleneck analysis of Section V-B on Kepler.
# --------------------------------------------------------------------- #
print("\n=== Kepler (GTX 660) bottleneck analysis ===")
dev = PAPER_DEVICES["660"]
mix = get_kernel(HashAlgorithm.MD5, KernelVariant.BYTE_PERM).mix_for("3.0")
shm_cycles = mix.shift_mad / 32  # one 32-wide shift/MAD group
addlop_cycles = mix.add_lop / 160  # five 32-wide ADD/LOP groups
print(f"shift/MAD port : {mix.shift_mad} instr -> {shm_cycles:.2f} cycles/hash")
print(f"ADD/LOP ports  : {mix.add_lop} instr -> {addlop_cycles:.2f} cycles/hash")
print(f"bottleneck     : {'shift/MAD' if shm_cycles > addlop_cycles else 'ADD/LOP'} "
      f"(paper: 43 + 43 + 3 = 89 ~ 270/3, contributing equally)")
theo = theoretical_throughput(dev, mix)
ours = simulated_throughput(dev, mix, ilp_fraction=0.05)
print(f"theoretical    : {theo:.1f} Mkeys/s, achieved {ours:.1f} "
      f"({ours / theo:.2%}; paper reports 99.46%)")

# --------------------------------------------------------------------- #
# 4. Cross-check with the cycle-level scheduler simulation.
# --------------------------------------------------------------------- #
print("\n=== cycle-level simulation (one multiprocessor, 64 warps) ===")
sim = simulate_kernel_cycles(dev, mix, interleave=1)
sim2 = simulate_kernel_cycles(dev, mix, interleave=2)
print(f"serial kernel      : {sim.ops_per_cycle:6.1f} ops/cycle "
      f"-> {sim.mkeys_per_second(dev):7.1f} Mkeys/s")
print(f"2-hash interleave  : {sim2.ops_per_cycle:6.1f} ops/cycle "
      f"-> {sim2.mkeys_per_second(dev):7.1f} Mkeys/s "
      f"(dual-issue {sim2.dual_issue_fraction:.0%})")

# --------------------------------------------------------------------- #
# 5. The funnel-shift future (CC 3.5).
# --------------------------------------------------------------------- #
print("\n=== CC 3.5 extrapolation (funnel shift) ===")
titan = DEVICES["TitanCC35"]
mix35 = get_kernel(HashAlgorithm.MD5, KernelVariant.BYTE_PERM).mix_for("3.5")
print(f"rotations become single SHF instructions: shift/MAD load "
      f"{get_kernel(HashAlgorithm.MD5, KernelVariant.BYTE_PERM).mix_for('3.0').shift_mad} "
      f"-> {mix35.shift_mad} instr/hash")
print(f"{titan.name}: theoretical {theoretical_throughput(titan, mix35):.0f} Mkeys/s")
