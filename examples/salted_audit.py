#!/usr/bin/env python
"""Auditing session: periodic cracking tests over salted credentials.

Section I of the paper: "In some working environments, it is a standard
procedure to make periodic cracking tests, called auditing sessions, to
assess the reliability of the employees' passwords" — and salting is
exactly the setting where brute force is the *only* option, because
lookup/rainbow tables are useless against per-account salts.

This example builds a small salted credential store, audits it with a
candidate budget, and prints which accounts fell, including a hybrid
dictionary pass for the longer passwords brute force cannot reach.

Run:  python examples/salted_audit.py
"""

import hashlib

from repro import ALPHA_LOWER
from repro.apps.audit import AuditEntry, AuditSession
from repro.apps.cracking import CrackTarget
from repro.apps.dictionary import HybridAttack
from repro.kernels.variants import HashAlgorithm


def store_password(account: str, password: str) -> AuditEntry:
    """What the credential DB stores: salt and MD5(password + salt)."""
    salt = f"::{account}".encode()  # per-account suffix salt
    return AuditEntry(
        account=account,
        digest=hashlib.md5(password.encode() + salt).digest(),
        suffix=salt,
    )


# --------------------------------------------------------------------- #
# The credential store under audit.
# --------------------------------------------------------------------- #
entries = [
    store_password("alice", "cat"),        # 3 chars: falls to brute force
    store_password("bob", "dgx"),          # random but short: falls too
    store_password("carol", "zebra"),      # 5 chars: outside this budget
    store_password("dave", "dragon7"),     # long, but a mangled dictionary word
]

session = AuditSession(
    entries,
    charset=ALPHA_LOWER,
    algorithm=HashAlgorithm.MD5,
    min_length=1,
    max_length=3,  # the brute-force budget of this audit policy
)
report = session.run()

print("=== brute-force pass (<= 3 lower-case chars) ===")
for finding in report.findings:
    print(
        f"  CRACKED {finding.account:6s} -> {finding.password!r} "
        f"({finding.candidates_tested:,} candidates, {finding.elapsed:.2f}s)"
    )
print(f"  survival rate: {report.survival_rate:.0%} "
      f"({report.accounts_total - report.cracked}/{report.accounts_total} accounts held)")

# --------------------------------------------------------------------- #
# Hybrid pass: dictionary words + common mangling rules.
# --------------------------------------------------------------------- #
print("\n=== hybrid dictionary pass ===")
attack = HybridAttack(words=("password", "dragon", "zebra", "letmein"))
print(f"  candidate set: {attack.size} mangled words")
for entry in entries:
    if report.password_of(entry.account):
        continue  # already cracked above
    target = CrackTarget(
        algorithm=HashAlgorithm.MD5,
        digest=entry.digest,
        charset=ALPHA_LOWER,
        min_length=1,
        max_length=12,
        prefix=entry.prefix,
        suffix=entry.suffix,
    )
    hits = attack.search(target)
    for _, word in hits:
        print(f"  CRACKED {entry.account:6s} -> {word!r} (hybrid rule hit)")
    if not hits:
        print(f"  held    {entry.account:6s}")
