#!/usr/bin/env python
"""The full distributed protocol, live: scatter, gather, death, resume.

Runs the in-process master/worker runtime (threads standing in for LAN
nodes, real wire messages, real vectorized cracking):

1. three heterogeneous workers crack a salted password cooperatively;
2. a worker crashes mid-run; the master's timeout detects it and requeues
   its interval over the survivors — no candidate lost or repeated;
3. the run checkpoints to JSON mid-way and a fresh master resumes it.

Run:  python examples/distributed_runtime.py
"""

from repro import ALPHA_LOWER, CrackTarget, Interval
from repro.cluster.runtime import DistributedMaster, WorkerConfig
from repro.core.progress import ProgressLog

target = CrackTarget.from_password(
    "rust", ALPHA_LOWER, suffix=b"::2014", min_length=1, max_length=4
)
print(f"target: salted MD5, space of {target.space_size:,} candidates")

# --------------------------------------------------------------------- #
# 1. Cooperative crack with heterogeneous workers.
# --------------------------------------------------------------------- #
workers = [
    WorkerConfig("gpu-rig", batch_size=1 << 12),
    WorkerConfig("desktop", batch_size=1 << 10),
    WorkerConfig("laptop", batch_size=1 << 8, slowdown=0.001),
]
result = DistributedMaster(target, workers, chunk_size=4096).run()
print(f"\n[1] cracked: {result.keys!r} in {result.chunks} chunks")
print(f"    wire traffic: {result.bytes_sent:,} B scattered, "
      f"{result.bytes_received:,} B gathered "
      f"({result.bytes_sent / result.chunks:.0f} B per scatter — "
      f"well under the paper's 1 KB bound)")

# --------------------------------------------------------------------- #
# 2. Fault injection: a worker dies after one chunk.
# --------------------------------------------------------------------- #
workers = [
    WorkerConfig("mortal", fail_after_chunks=1),
    WorkerConfig("survivor-1"),
    WorkerConfig("survivor-2"),
]
master = DistributedMaster(target, workers, chunk_size=2048, reply_timeout=1.0)
result = master.run()
print(f"\n[2] cracked: {result.keys!r} despite losing {result.dead_workers}")
print(f"    requeued {result.requeued:,} candidates; "
      f"coverage exact: {result.progress.check_invariant() and result.progress.is_complete}")

# --------------------------------------------------------------------- #
# 3. Checkpoint and resume.
# --------------------------------------------------------------------- #
log = ProgressLog(total=target.space_size)
half = target.space_size // 2
DistributedMaster(target, [WorkerConfig("session1")], chunk_size=4096).run(
    interval=Interval(0, half), progress=log
)
snapshot = log.to_json()
print(f"\n[3] session 1 checkpointed at {log.fraction_done:.0%} "
      f"({len(snapshot)} bytes of JSON)")

resumed = ProgressLog.from_json(snapshot)
DistributedMaster(target, [WorkerConfig("session2")], chunk_size=4096).run(
    progress=resumed
)
print(f"    session 2 finished the space: complete={resumed.is_complete}, "
      f"found={[k for _, k in resumed.found]!r}")
assert resumed.is_complete and "rust" in [k for _, k in resumed.found]
