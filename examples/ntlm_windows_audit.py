#!/usr/bin/env python
"""Windows credential audit: NTLM hashes, the unsalted goldmine.

NTLM — ``MD4(UTF-16LE(password))`` — is the hash every tool in the paper's
comparison shipped a kernel for, because Windows stores it *unsalted*: one
precomputation serves every domain, and the MD4 digest-reversal trick makes
brute force even cheaper than MD5 (30 of 48 steps per candidate).

This example audits a SAM-style dump: cracks the weak entries by brute
force over policy-sized windows, demonstrates that identical passwords leak
identical hashes (the unsalted curse), and prints the engine throughput.

Run:  python examples/ntlm_windows_audit.py
"""

from repro.apps.ntlm import NTLMCrackStats, NTLMTarget, crack_ntlm, ntlm_hex
from repro.keyspace import ALNUM_LOWER, ALPHA_LOWER

# --------------------------------------------------------------------- #
# A SAM-style dump: account -> NTLM hash (hex), as `secretsdump` prints it.
# --------------------------------------------------------------------- #
SAM_DUMP = {
    "guest": ntlm_hex("abc"),
    "svc_backup": ntlm_hex("dog1"),
    "j.doe": ntlm_hex("dog1"),      # same password as svc_backup!
    "administrator": ntlm_hex("Tr0ub4dor&3"),  # outside this budget
}

print("account          NTLM hash")
for account, hexhash in SAM_DUMP.items():
    print(f"{account:16s} {hexhash}")

# --------------------------------------------------------------------- #
# 0. The unsalted curse: duplicates are visible before any cracking.
# --------------------------------------------------------------------- #
by_hash: dict[str, list[str]] = {}
for account, hexhash in SAM_DUMP.items():
    by_hash.setdefault(hexhash, []).append(account)
for hexhash, accounts in by_hash.items():
    if len(accounts) > 1:
        print(f"\nduplicate password detected without cracking anything: {accounts}")
        print("(salting would have hidden this — NTLM has none)")

# --------------------------------------------------------------------- #
# 1. Brute-force audit over a weak-password policy window.
# --------------------------------------------------------------------- #
print("\n=== brute force: <=4 lower-case alphanumerics ===")
for account, hexhash in SAM_DUMP.items():
    target = NTLMTarget(
        digest=bytes.fromhex(hexhash),
        charset=ALNUM_LOWER,
        min_length=1,
        max_length=4,
    )
    stats = NTLMCrackStats()
    matches = crack_ntlm(target, stats=stats)
    if matches:
        _, password = matches[0]
        print(f"  CRACKED {account:16s} -> {password!r} "
              f"({stats.mkeys_per_second:.2f} Mkeys/s, MD4 reversal kernel)")
    else:
        print(f"  held    {account:16s} ({stats.tested:,} candidates)")

# --------------------------------------------------------------------- #
# 2. The reversal ablation on NTLM: 30 of 48 steps per candidate.
# --------------------------------------------------------------------- #
import time

target = NTLMTarget(
    digest=bytes.fromhex(ntlm_hex("zzzz")), charset=ALPHA_LOWER, min_length=4, max_length=4
)
crack_ntlm(target, batch_size=1 << 12)  # warm the allocator/cache
for label, naive in (("optimized (reversal)", False), ("naive (full MD4)", True)):
    stats = NTLMCrackStats()
    t0 = time.perf_counter()
    crack_ntlm(target, stats=stats, force_naive=naive)
    print(f"\n{label:22s}: {stats.mkeys_per_second:.2f} Mkeys/s "
          f"over {stats.tested:,} candidates")
