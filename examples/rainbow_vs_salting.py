#!/usr/bin/env python
"""Why salting forces brute force: rainbow tables demolished by one byte.

Section I of the paper surveys the four hash-lookup strategies and observes
that precomputation attacks (lookup tables, rainbow tables) "are completely
useless when the key is concatenated with a random string in a technique
called salting ... [which] does not increment the search space since the
salt is known by definition".  This example measures all of that:

1. build a lookup table and a rainbow table for 4-char lowercase MD5;
2. show the rainbow table inverts most unsalted digests using ~1% of the
   lookup table's memory (the time-memory tradeoff);
3. salt the same password and watch both tables return nothing;
4. crack the salted digest anyway with the brute-force engine, unchanged.

Run:  python examples/rainbow_vs_salting.py
"""

import hashlib
import time

from repro import ALPHA_LOWER, CrackTarget, HashAlgorithm, Interval
from repro.apps.cracking import CrackEngine
from repro.apps.rainbow import LookupTable, RainbowTable

CHARSET = ALPHA_LOWER
LENGTH = 4
PASSWORD = "wolf"
SALT = b"#a1"

# --------------------------------------------------------------------- #
# 1. Precomputation: both tables, offline.
# --------------------------------------------------------------------- #
print(f"key space: {len(CHARSET)}^{LENGTH} = {len(CHARSET)**LENGTH:,} keys")
t0 = time.perf_counter()
lookup = LookupTable(CHARSET, LENGTH).build()
print(f"lookup table : {lookup.entries:,} entries, "
      f"{lookup.memory_bytes / 1e6:.1f} MB payload "
      f"({time.perf_counter() - t0:.1f}s to build)")

t0 = time.perf_counter()
rainbow = RainbowTable(CHARSET, LENGTH, chain_length=200, n_chains=4000, seed=7).build()
print(f"rainbow table: {rainbow.stored_chains:,} chains, "
      f"{rainbow.memory_bytes / 1e3:.1f} KB payload "
      f"({time.perf_counter() - t0:.1f}s to build)")

coverage = rainbow.coverage_sample(sample=60)
print(f"rainbow coverage (sampled): {coverage:.0%} of the space "
      f"at {rainbow.memory_bytes / lookup.memory_bytes:.1%} of the memory")

# --------------------------------------------------------------------- #
# 2. Unsalted: both tables invert instantly.
# --------------------------------------------------------------------- #
digest = hashlib.md5(PASSWORD.encode()).digest()
print(f"\nunsalted MD5({PASSWORD!r}):")
print(f"  lookup table  -> {lookup.lookup(digest)!r}")
print(f"  rainbow table -> {rainbow.lookup(digest)!r}")

# --------------------------------------------------------------------- #
# 3. Salted: the precomputation is void.
# --------------------------------------------------------------------- #
salted = hashlib.md5(PASSWORD.encode() + SALT).digest()
print(f"\nsalted MD5({PASSWORD!r} + {SALT!r}):")
print(f"  lookup table  -> {lookup.lookup(salted)!r}")
print(f"  rainbow table -> {rainbow.lookup(salted)!r}")

# --------------------------------------------------------------------- #
# 4. Brute force does not care: the salt is just template bytes.
# --------------------------------------------------------------------- #
target = CrackTarget(
    algorithm=HashAlgorithm.MD5,
    digest=salted,
    charset=CHARSET,
    min_length=LENGTH,
    max_length=LENGTH,
    suffix=SALT,
)
engine = CrackEngine(target)
t0 = time.perf_counter()
matches = engine.search(Interval(0, target.space_size))
elapsed = time.perf_counter() - t0
print(f"\nbrute force on the salted digest: "
      f"{[k for _, k in matches]!r} in {elapsed:.2f}s "
      f"({engine.stats.mkeys_per_second:.2f} Mkeys/s)")
assert [k for _, k in matches] == [PASSWORD]
print("the search space never grew — the salt is known by definition.")
