#!/usr/bin/env python
"""The paper's GPU cluster, simulated end to end (Tables VIII and IX).

Rebuilds the evaluation network of Section VI-A — node A (GT 540M)
dispatching to B (GTX 660 + 550 Ti) and C (8600M GT), C dispatching to D
(8800 GTS) — from the microarchitecture model, then:

1. prints the per-device Table VIII rows (theoretical vs achieved);
2. runs the discrete-event dispatch simulation and prints the Table IX
   whole-network throughput and efficiency;
3. answers the auditing question of the introduction: how long to exhaust
   all passwords of up to 8 mixed-case alphanumerics on this cluster?
4. plants a password and shows which GPU would find it, and when.

Run:  python examples/gpu_cluster_simulation.py
"""

from repro import ALNUM_MIXED, CrackTarget, CrackingSession, build_paper_network
from repro.cluster.simulate import simulate_run
from repro.cluster.topology import to_networkx
from repro.gpusim.device import PAPER_DEVICES
from repro.gpusim.throughput import device_report
from repro.kernels.variants import HashAlgorithm

# --------------------------------------------------------------------- #
# 1. Per-device throughput (Table VIII).
# --------------------------------------------------------------------- #
print("=== single-GPU throughput, MD5 (Mkeys/s) ===")
print(f"{'device':8s} {'theoretical':>12s} {'achieved':>10s} {'efficiency':>11s}")
for name, device in PAPER_DEVICES.items():
    r = device_report(device, HashAlgorithm.MD5)
    print(f"{name:8s} {r.theoretical_mkeys:12.1f} {r.achieved_mkeys:10.1f} {r.efficiency:10.1%}")

# --------------------------------------------------------------------- #
# 2. The whole network (Table IX).
# --------------------------------------------------------------------- #
network = build_paper_network(HashAlgorithm.MD5)
graph = to_networkx(network)
print(f"\n=== network: {graph.number_of_nodes()} vertices "
      f"({len(network.subtree_nodes())} dispatch nodes, "
      f"{len(network.subtree_devices())} GPUs) ===")
result = simulate_run(network, total_candidates=10**11)
print(f"network throughput : {result.mkeys_per_second:7.1f} Mkeys/s "
      f"(paper: 3258.4)")
print(f"network efficiency : {result.network_efficiency:7.3f}       (paper: 0.852)")
print(f"dispatch rounds    : {result.rounds}, dispatch efficiency "
      f"{result.dispatch_efficiency:.1%}")

# --------------------------------------------------------------------- #
# 3. The security-assessment estimate.
# --------------------------------------------------------------------- #
target = CrackTarget.from_password(
    "S3cret9", ALNUM_MIXED, min_length=1, max_length=8
)
session = CrackingSession(target)
estimate = session.estimate_on(network)
print("\n=== exhausting <=8 mixed-case alphanumerics on this cluster ===")
print(f"search space  : {estimate.space_size:,} keys")
print(f"full scan     : {estimate.hours_full_scan:.1f} hours")
print(f"expected hit  : {estimate.seconds_expected / 3600:.1f} hours (mean)")

# --------------------------------------------------------------------- #
# 4. Plant a key, watch the dispatch find it.
# --------------------------------------------------------------------- #
run = session.simulate_on(
    network, planted_password="S3cret9", scale=10**10, round_seconds=0.5
)
if run.found:
    device, index = run.found[0]
    print(f"\nplanted key id {index:,} scanned by device {device!r}")
else:
    print("\nplanted key fell outside the truncated simulation window")
for name in ("660", "550Ti", "8800", "540M", "8600M"):
    stats = run.device_stats[name]
    print(f"  {name:7s} scanned {stats.candidates:>14,} keys "
          f"({stats.candidates / run.total_candidates:6.1%} of the space)")
