#!/usr/bin/env python
"""Bitcoin-style mining: the same pattern, a different test function.

The paper's introduction motivates exhaustive search with Bitcoin mining:
find a 32-bit nonce whose double-SHA256 block hash has enough leading zero
bits.  The search space is an interval of nonces, so the dispatch machinery
is identical to password cracking — this example splits the nonce space
across simulated pool members exactly like a mining pool does ("dividing
the search space and sharing rewards on the basis of the computing power
contribution").

Run:  python examples/bitcoin_mining.py
"""

import numpy as np

from repro.apps.mining import MiningJob, leading_zero_bits
from repro.apps.mining import mine_interval
from repro.hashes.sha256 import sha256d_digest
from repro.keyspace import Interval, partition_weighted

# --------------------------------------------------------------------- #
# A block header template (76 fixed bytes + 4-byte nonce slot).
# --------------------------------------------------------------------- #
rng = np.random.default_rng(2014)
header = rng.integers(0, 256, size=80, dtype=np.uint8).tobytes()
DIFFICULTY = 18  # leading zero bits; the network raises this over time
job = MiningJob(header=header, difficulty_bits=DIFFICULTY)
print(f"difficulty      : {DIFFICULTY} leading zero bits "
      f"(expected ~1 winner per {2**DIFFICULTY:,} nonces)")

# --------------------------------------------------------------------- #
# The pool: members of unequal power claim shares of the nonce space.
# --------------------------------------------------------------------- #
members = {"rig-a": 5.0, "rig-b": 2.0, "laptop": 1.0}
SCAN = 2**20  # the slice of the 2^32 space this demo scans
shares = partition_weighted(Interval(0, SCAN), list(members.values()))
print(f"scanning        : {SCAN:,} of {2**32:,} nonces, split by power\n")

winners: list[tuple[str, int]] = []
for (name, power), share in zip(members.items(), shares):
    found = mine_interval(job, share, batch_size=1 << 14)
    print(f"{name:8s} (power {power:.0f}) scanned {share.size:>9,} nonces "
          f"[{share.start:>9,}, {share.stop:>9,}) -> {len(found)} winner(s)")
    winners.extend((name, nonce) for nonce in found)

# --------------------------------------------------------------------- #
# Verify every winner the way the network would.
# --------------------------------------------------------------------- #
print()
if not winners:
    print("no winner in this slice — a real pool just keeps going "
          "(the expected wait is what makes mining hard)")
for name, nonce in winners:
    digest = sha256d_digest(job.with_nonce(nonce))
    bits = leading_zero_bits(digest)
    print(f"block solved by {name}: nonce={nonce:#010x}")
    print(f"  sha256d = {digest.hex()}")
    print(f"  leading zero bits = {bits} (required {DIFFICULTY})")
    assert bits >= DIFFICULTY
