#!/usr/bin/env python
"""Quickstart: crack an MD5-hashed password on your CPU cores.

The one-minute tour of the library: define a target (here built from a
known password so the example is self-contained), run the local parallel
backend — the same scatter/gather pattern the paper runs on a GPU cluster,
with NumPy lanes standing in for CUDA threads — and inspect the result.

Run:  python examples/quickstart.py
"""

from repro import ALPHA_LOWER, CrackTarget, CrackingSession, Recorder, render_summary

# An auditor is handed this digest from a credential database:
target = CrackTarget.from_password(
    "dog",  # the unknown; only its MD5 is used below
    charset=ALPHA_LOWER,
    min_length=1,
    max_length=4,  # policy says short passwords are the threat model
)
print(f"target digest : {target.digest.hex()}")
print(f"search space  : {target.space_size:,} candidate keys "
      f"(lower-case, 1-4 chars)")

session = CrackingSession(target)
recorder = Recorder()  # optional: captures phase timings + per-worker X_j
result = session.run(stop_on_first=True, recorder=recorder)

print(f"backend       : {result.backend} ({result.workers} workers)")
print(f"tested        : {result.tested:,} candidates "
      f"in {result.elapsed:.2f}s ({result.mkeys_per_second:.2f} Mkeys/s)")
print(f"cracked       : {result.passwords}")

assert result.passwords == ["dog"]
print("\nThe digest-reversal kernel (Section V of the paper) did the work:")
print("each candidate ran 46 of MD5's 64 steps before being rejected.")

print("\nWhere the time went (the paper's scatter/search/gather split):")
print(render_summary(result.metrics))
